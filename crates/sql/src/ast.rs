//! Abstract syntax tree for the supported SQL dialect.

use dt_common::{DataType, Duration};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT ...` (possibly a UNION ALL chain).
    Query(Query),
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, DataType)>,
        /// `OR REPLACE` was specified.
        or_replace: bool,
    },
    /// `CREATE VIEW name AS query`.
    CreateView {
        /// View name.
        name: String,
        /// Defining query.
        query: Query,
        /// `OR REPLACE` was specified.
        or_replace: bool,
    },
    /// `CREATE DYNAMIC TABLE name TARGET_LAG=... WAREHOUSE=... AS query`.
    CreateDynamicTable(CreateDynamicTable),
    /// `INSERT INTO name VALUES (...), ...` or `INSERT INTO name <query>`.
    Insert {
        /// Target table.
        table: String,
        /// Row-constructor values (if VALUES form).
        values: Vec<Vec<Expr>>,
        /// Source query (if query form).
        query: Option<Query>,
    },
    /// `DELETE FROM name [WHERE expr]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        predicate: Option<Expr>,
    },
    /// `UPDATE name SET col=expr, ... [WHERE expr]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        assignments: Vec<(String, Expr)>,
        /// Optional predicate.
        predicate: Option<Expr>,
    },
    /// `DROP TABLE|VIEW|DYNAMIC TABLE name`.
    Drop {
        /// Entity name.
        name: String,
    },
    /// `UNDROP TABLE name` (§3.4: recovery after upstream DDL).
    Undrop {
        /// Entity name.
        name: String,
    },
    /// `CREATE [DYNAMIC] TABLE name CLONE source` — zero-copy clone (§3.4).
    Clone {
        /// New entity name.
        name: String,
        /// Entity to clone.
        source: String,
    },
    /// `EXPLAIN <query>` — print the bound logical plan.
    Explain(Query),
    /// `SHOW DYNAMIC TABLES` — status of every DT.
    ShowDynamicTables,
    /// `SHOW STATS` — engine telemetry counters (commit + refresh
    /// pipelines) as `name`/`value` rows.
    ShowStats,
    /// `ALTER DYNAMIC TABLE name SUSPEND|RESUME|REFRESH`.
    AlterDynamicTable {
        /// DT name.
        name: String,
        /// The action.
        action: AlterDtAction,
    },
    /// `ALTER TABLE name SET LOCKING OPTIMISTIC|PESSIMISTIC|AUTO` —
    /// per-table concurrency-control override for the commit pipeline's
    /// admission locks.
    AlterTableLocking {
        /// Base-table name.
        name: String,
        /// The requested locking policy.
        policy: LockingPolicyOption,
    },
    /// `BEGIN [TRANSACTION]` / `START TRANSACTION` — open an explicit
    /// transaction on the session. Reads inside it are pinned to one
    /// snapshot; DML is buffered until `COMMIT`.
    Begin,
    /// `COMMIT` — atomically apply the session's buffered transaction
    /// under first-committer-wins validation.
    Commit,
    /// `ROLLBACK` — discard the session's buffered transaction.
    Rollback,
}

/// Locking policy named in `ALTER TABLE ... SET LOCKING`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockingPolicyOption {
    /// First-committer-wins: conflict-abort on contention.
    Optimistic,
    /// FIFO wait-queues: block on contention (bounded by the lock
    /// timeout).
    Pessimistic,
    /// Let the adaptive policy pick per observed abort rate (default).
    Auto,
}

/// Actions on `ALTER DYNAMIC TABLE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlterDtAction {
    /// Stop scheduling refreshes.
    Suspend,
    /// Resume scheduling refreshes (resets the error counter).
    Resume,
    /// Trigger a manual refresh (§3.2: data timestamp after the command).
    Refresh,
}

/// `CREATE DYNAMIC TABLE` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateDynamicTable {
    /// DT name.
    pub name: String,
    /// Target lag: a duration or DOWNSTREAM (§3.2).
    pub target_lag: TargetLag,
    /// Virtual warehouse executing refreshes (§3.3.1).
    pub warehouse: String,
    /// Requested refresh mode (§3.3.2). AUTO lets the system pick
    /// INCREMENTAL when the query is differentiable, FULL otherwise.
    pub refresh_mode: RefreshModeOption,
    /// Initialization: synchronous (ON_CREATE) or by the scheduler.
    pub initialize_on_create: bool,
    /// Defining query.
    pub query: Query,
    /// `OR REPLACE` was specified.
    pub or_replace: bool,
}

/// Target lag specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetLag {
    /// Keep lag below this duration.
    Duration(Duration),
    /// Align with the minimum target lag of downstream DTs (§3.2).
    Downstream,
}

/// Refresh mode requested at creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshModeOption {
    /// System decides (incremental when possible).
    Auto,
    /// Always recompute from scratch.
    Full,
    /// Require incremental; creation fails if not differentiable.
    Incremental,
}

/// A query: one or more SELECT blocks combined with UNION ALL.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The first SELECT block.
    pub select: SelectBlock,
    /// Additional blocks appended with UNION ALL.
    pub union_all: Vec<SelectBlock>,
    /// `FOR UPDATE`: inside an explicit transaction, pessimistically lock
    /// every scanned base table at read time (held until the transaction
    /// retires). Rejected outside a transaction and in subqueries.
    pub for_update: bool,
}

/// One SELECT block.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectBlock {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// FROM clause (None for `SELECT <exprs>` without FROM).
    pub from: Option<TableRef>,
    /// JOIN clauses, applied left to right.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys; `GroupBy::All` is Snowflake's `GROUP BY ALL`
    /// (group by every non-aggregate projection — used in Listing 1).
    pub group_by: GroupBy,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys (expr, descending).
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// GROUP BY clause.
#[derive(Debug, Clone, PartialEq)]
pub enum GroupBy {
    /// No grouping.
    None,
    /// Explicit keys.
    Exprs(Vec<Expr>),
    /// `GROUP BY ALL`.
    All,
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `alias.*`.
    QualifiedWildcard(String),
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// `AS alias` (or implicit trailing identifier alias).
        alias: Option<String>,
    },
}

/// A FROM-clause relation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// A named table/view/DT with optional alias.
    Named {
        /// Object name.
        name: String,
        /// Alias.
        alias: Option<String>,
    },
    /// A parenthesized subquery with alias.
    Subquery {
        /// The inner query.
        query: Box<Query>,
        /// Alias (required).
        alias: String,
    },
}

impl TableRef {
    /// The name this relation binds in scope.
    pub fn binding_name(&self) -> &str {
        match self {
            TableRef::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Subquery { alias, .. } => alias,
        }
    }
}

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// INNER JOIN.
    Inner,
    /// LEFT OUTER JOIN.
    Left,
    /// RIGHT OUTER JOIN.
    Right,
    /// FULL OUTER JOIN.
    Full,
}

/// One JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join type.
    pub join_type: JoinType,
    /// Right-hand relation.
    pub relation: TableRef,
    /// ON condition.
    pub on: Expr,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// NULL literal.
    Null,
    /// Boolean literal.
    Bool(bool),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    String(String),
    /// Interval literal, e.g. `INTERVAL '10 minutes'`.
    Interval(Duration),
    /// Positional `?` parameter placeholder (0-based, numbered left to
    /// right in parse order). Only meaningful inside prepared statements;
    /// bound to a concrete value at execute time.
    Placeholder(usize),
    /// Column reference, optionally qualified: `a.b` or `b`.
    Column {
        /// Table qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operator.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operator.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Operand.
        expr: Box<Expr>,
        /// Candidate list.
        list: Vec<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
    },
    /// `CASE WHEN c THEN v ... [ELSE e] END`.
    Case {
        /// (condition, value) arms.
        when_then: Vec<(Expr, Expr)>,
        /// ELSE value.
        else_value: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)` or `expr::type`.
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type.
        ty: DataType,
    },
    /// Function call (scalar or aggregate; the binder decides which).
    Function {
        /// Function name, lowercased.
        name: String,
        /// Arguments; `count(*)` is represented with `args == [Wildcard]`.
        args: Vec<FunctionArg>,
        /// `DISTINCT` inside the call (e.g. `count(distinct x)`).
        distinct: bool,
    },
    /// Window function: `func(args) OVER (PARTITION BY ... ORDER BY ...)`.
    WindowFunction {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<FunctionArg>,
        /// PARTITION BY keys.
        partition_by: Vec<Expr>,
        /// ORDER BY keys (expr, descending).
        order_by: Vec<(Expr, bool)>,
    },
}

/// Function argument.
#[derive(Debug, Clone, PartialEq)]
pub enum FunctionArg {
    /// `*` as in `count(*)`.
    Wildcard,
    /// Ordinary expression argument.
    Expr(Expr),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

impl Expr {
    /// Visit this expression tree pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
                expr.walk(f)
            }
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::Between { expr, low, high } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::Case {
                when_then,
                else_value,
            } => {
                for (c, v) in when_then {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = else_value {
                    e.walk(f);
                }
            }
            Expr::Function { args, .. } => {
                for a in args {
                    if let FunctionArg::Expr(e) = a {
                        e.walk(f);
                    }
                }
            }
            Expr::WindowFunction {
                args,
                partition_by,
                order_by,
                ..
            } => {
                for a in args {
                    if let FunctionArg::Expr(e) = a {
                        e.walk(f);
                    }
                }
                for e in partition_by {
                    e.walk(f);
                }
                for (e, _) in order_by {
                    e.walk(f);
                }
            }
            _ => {}
        }
    }

    /// True when this expression contains a window function anywhere.
    pub fn contains_window_function(&self) -> bool {
        let mut found = false;
        self.walk(&mut |e| {
            if matches!(e, Expr::WindowFunction { .. }) {
                found = true;
            }
        });
        found
    }
}

impl Query {
    /// Visit every expression in this query, including expressions inside
    /// joined relations and FROM-clause subqueries.
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        for block in std::iter::once(&self.select).chain(self.union_all.iter()) {
            for item in &block.items {
                if let SelectItem::Expr { expr, .. } = item {
                    expr.walk(f);
                }
            }
            if let Some(r) = &block.from {
                walk_table_ref(r, f);
            }
            for j in &block.joins {
                walk_table_ref(&j.relation, f);
                j.on.walk(f);
            }
            if let Some(w) = &block.where_clause {
                w.walk(f);
            }
            if let GroupBy::Exprs(keys) = &block.group_by {
                for k in keys {
                    k.walk(f);
                }
            }
            if let Some(h) = &block.having {
                h.walk(f);
            }
            for (e, _) in &block.order_by {
                e.walk(f);
            }
        }
    }
}

fn walk_table_ref<'a>(r: &'a TableRef, f: &mut impl FnMut(&'a Expr)) {
    if let TableRef::Subquery { query, .. } = r {
        query.walk_exprs(f);
    }
}

impl Statement {
    /// Visit every expression in this statement, wherever it appears.
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match self {
            Statement::Query(q) | Statement::Explain(q) => q.walk_exprs(f),
            Statement::CreateView { query, .. } => query.walk_exprs(f),
            Statement::CreateDynamicTable(cdt) => cdt.query.walk_exprs(f),
            Statement::Insert { values, query, .. } => {
                for row in values {
                    for e in row {
                        e.walk(f);
                    }
                }
                if let Some(q) = query {
                    q.walk_exprs(f);
                }
            }
            Statement::Delete { predicate, .. } => {
                if let Some(p) = predicate {
                    p.walk(f);
                }
            }
            Statement::Update {
                assignments,
                predicate,
                ..
            } => {
                for (_, e) in assignments {
                    e.walk(f);
                }
                if let Some(p) = predicate {
                    p.walk(f);
                }
            }
            Statement::CreateTable { .. }
            | Statement::Drop { .. }
            | Statement::Undrop { .. }
            | Statement::Clone { .. }
            | Statement::ShowDynamicTables
            | Statement::ShowStats
            | Statement::AlterDynamicTable { .. }
            | Statement::AlterTableLocking { .. }
            | Statement::Begin
            | Statement::Commit
            | Statement::Rollback => {}
        }
    }

    /// Number of `?` placeholders in this statement (placeholders are
    /// numbered contiguously by the parser, so the count is `max + 1`).
    pub fn placeholder_count(&self) -> usize {
        let mut max: Option<usize> = None;
        self.walk_exprs(&mut |e| {
            if let Expr::Placeholder(i) = e {
                max = Some(max.map_or(*i, |m| m.max(*i)));
            }
        });
        max.map_or(0, |m| m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_visits_nested_expressions() {
        let e = Expr::Binary {
            left: Box::new(Expr::Column {
                qualifier: None,
                name: "a".into(),
            }),
            op: BinaryOp::Add,
            right: Box::new(Expr::Case {
                when_then: vec![(Expr::Bool(true), Expr::Int(1))],
                else_value: Some(Box::new(Expr::Int(2))),
            }),
        };
        // Binary + Column + Case + condition + value + else = 6 nodes.
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 6);
    }

    #[test]
    fn window_function_detection() {
        let w = Expr::WindowFunction {
            name: "sum".into(),
            args: vec![FunctionArg::Expr(Expr::Int(1))],
            partition_by: vec![],
            order_by: vec![],
        };
        assert!(w.contains_window_function());
        assert!(!Expr::Int(1).contains_window_function());
    }

    #[test]
    fn placeholder_count_walks_every_clause() {
        let q = Query {
            select: SelectBlock {
                distinct: false,
                items: vec![SelectItem::Expr {
                    expr: Expr::Placeholder(1),
                    alias: None,
                }],
                from: None,
                joins: vec![],
                where_clause: Some(Expr::Binary {
                    left: Box::new(Expr::Column {
                        qualifier: None,
                        name: "k".into(),
                    }),
                    op: BinaryOp::Eq,
                    right: Box::new(Expr::Placeholder(0)),
                }),
                group_by: GroupBy::None,
                having: None,
                order_by: vec![],
                limit: None,
            },
            union_all: vec![],
            for_update: false,
        };
        assert_eq!(Statement::Query(q).placeholder_count(), 2);
        let none = Statement::ShowDynamicTables;
        assert_eq!(none.placeholder_count(), 0);
    }

    #[test]
    fn table_ref_binding_names() {
        let t = TableRef::Named {
            name: "orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(t.binding_name(), "o");
        let t2 = TableRef::Named {
            name: "orders".into(),
            alias: None,
        };
        assert_eq!(t2.binding_name(), "orders");
    }
}
