//! SQL tokenizer.

use dt_common::{DtError, DtResult};

/// Kinds of token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized in the parser,
    /// case-insensitively; `ident` holds the original text lowercased).
    Ident(String),
    /// Single-quoted string literal (quotes removed, '' unescaped).
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Punctuation / operator.
    Symbol(Symbol),
    /// End of input.
    Eof,
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Symbol {
    LParen,
    RParen,
    Comma,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Dot,
    DoubleColon,
    /// `?` — positional parameter placeholder in prepared statements.
    Question,
}

/// One token with its position (token index is tracked by the parser; we
/// keep the byte offset for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset in the source.
    pub offset: usize,
}

/// Tokenize SQL source text.
pub fn tokenize(src: &str) -> DtResult<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // -- line comments
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        if c.is_ascii_alphabetic() || c == '_' || c == '$' {
            let mut j = i + 1;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_ascii_alphanumeric() || d == '_' || d == '$' {
                    j += 1;
                } else {
                    break;
                }
            }
            let word = src[i..j].to_ascii_lowercase();
            tokens.push(Token {
                kind: TokenKind::Ident(word),
                offset: start,
            });
            i = j;
            continue;
        }
        if c == '"' {
            // Delimited identifier: preserves case? We lowercase anyway for
            // simplicity; the engine is case-insensitive throughout.
            let mut j = i + 1;
            while j < bytes.len() && bytes[j] != b'"' {
                j += 1;
            }
            if j >= bytes.len() {
                return Err(DtError::Lex {
                    pos: start,
                    message: "unterminated quoted identifier".into(),
                });
            }
            tokens.push(Token {
                kind: TokenKind::Ident(src[i + 1..j].to_ascii_lowercase()),
                offset: start,
            });
            i = j + 1;
            continue;
        }
        if c == '\'' {
            let mut j = i + 1;
            let mut out = String::new();
            loop {
                if j >= bytes.len() {
                    return Err(DtError::Lex {
                        pos: start,
                        message: "unterminated string literal".into(),
                    });
                }
                if bytes[j] == b'\'' {
                    if bytes.get(j + 1) == Some(&b'\'') {
                        out.push('\'');
                        j += 2;
                        continue;
                    }
                    break;
                }
                out.push(bytes[j] as char);
                j += 1;
            }
            tokens.push(Token {
                kind: TokenKind::StringLit(out),
                offset: start,
            });
            i = j + 1;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i;
            let mut saw_dot = false;
            while j < bytes.len() {
                let d = bytes[j] as char;
                if d.is_ascii_digit() {
                    j += 1;
                } else if d == '.' && !saw_dot && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit())
                {
                    saw_dot = true;
                    j += 1;
                } else {
                    break;
                }
            }
            let text = &src[i..j];
            let kind = if saw_dot {
                TokenKind::FloatLit(text.parse().map_err(|_| DtError::Lex {
                    pos: start,
                    message: format!("bad float literal '{text}'"),
                })?)
            } else {
                TokenKind::IntLit(text.parse().map_err(|_| DtError::Lex {
                    pos: start,
                    message: format!("bad integer literal '{text}'"),
                })?)
            };
            tokens.push(Token { kind, offset: start });
            i = j;
            continue;
        }
        let (sym, len) = match c {
            '(' => (Symbol::LParen, 1),
            ')' => (Symbol::RParen, 1),
            ',' => (Symbol::Comma, 1),
            ';' => (Symbol::Semicolon, 1),
            '*' => (Symbol::Star, 1),
            '+' => (Symbol::Plus, 1),
            '-' => (Symbol::Minus, 1),
            '/' => (Symbol::Slash, 1),
            '%' => (Symbol::Percent, 1),
            '.' => (Symbol::Dot, 1),
            '=' => (Symbol::Eq, 1),
            '!' if bytes.get(i + 1) == Some(&b'=') => (Symbol::NotEq, 2),
            '<' if bytes.get(i + 1) == Some(&b'>') => (Symbol::NotEq, 2),
            '<' if bytes.get(i + 1) == Some(&b'=') => (Symbol::LtEq, 2),
            '<' => (Symbol::Lt, 1),
            '>' if bytes.get(i + 1) == Some(&b'=') => (Symbol::GtEq, 2),
            '>' => (Symbol::Gt, 1),
            ':' if bytes.get(i + 1) == Some(&b':') => (Symbol::DoubleColon, 2),
            '?' => (Symbol::Question, 1),
            other => {
                return Err(DtError::Lex {
                    pos: start,
                    message: format!("unexpected character '{other}'"),
                })
            }
        };
        tokens.push(Token {
            kind: TokenKind::Symbol(sym),
            offset: start,
        });
        i += len;
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: src.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn words_lowercase_and_symbols() {
        let ks = kinds("SELECT a, b FROM T WHERE a >= 10");
        assert_eq!(ks[0], TokenKind::Ident("select".into()));
        assert_eq!(ks[1], TokenKind::Ident("a".into()));
        assert_eq!(ks[2], TokenKind::Symbol(Symbol::Comma));
        assert!(ks.contains(&TokenKind::Symbol(Symbol::GtEq)));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn string_literals_with_escapes() {
        let ks = kinds("select 'it''s'");
        assert_eq!(ks[1], TokenKind::StringLit("it's".into()));
    }

    #[test]
    fn numeric_literals() {
        let ks = kinds("select 42, 3.5");
        assert_eq!(ks[1], TokenKind::IntLit(42));
        assert_eq!(ks[3], TokenKind::FloatLit(3.5));
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("select 1 -- trailing comment\n, 2");
        assert!(ks.contains(&TokenKind::IntLit(2)));
    }

    #[test]
    fn double_colon_cast_and_dots() {
        let ks = kinds("e.payload::int");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("e".into()),
                TokenKind::Symbol(Symbol::Dot),
                TokenKind::Ident("payload".into()),
                TokenKind::Symbol(Symbol::DoubleColon),
                TokenKind::Ident("int".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn dollar_identifiers() {
        let ks = kinds("select $row_id, $action");
        assert_eq!(ks[1], TokenKind::Ident("$row_id".into()));
        assert_eq!(ks[3], TokenKind::Ident("$action".into()));
    }

    #[test]
    fn question_mark_placeholder() {
        let ks = kinds("select * from t where k = ?");
        assert!(ks.contains(&TokenKind::Symbol(Symbol::Question)));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("select 'oops"), Err(DtError::Lex { .. })));
    }

    #[test]
    fn minus_vs_comment_disambiguation() {
        let ks = kinds("select 1 - 2");
        assert!(ks.contains(&TokenKind::Symbol(Symbol::Minus)));
    }
}
