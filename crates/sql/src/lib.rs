//! SQL front end: lexer, AST, and recursive-descent parser.
//!
//! The grammar covers the SQL surface the paper's Dynamic Tables expose:
//!
//! * `CREATE DYNAMIC TABLE ... TARGET_LAG = '1 minute' | DOWNSTREAM
//!   WAREHOUSE = wh [REFRESH_MODE = AUTO|FULL|INCREMENTAL] AS SELECT ...`
//!   (Listing 1 of the paper parses verbatim, modulo the `payload:` variant
//!   path syntax, which we model as plain columns).
//! * The incrementalizable query subset of §3.3.2: projections, filters,
//!   UNION ALL, inner and outer joins, DISTINCT, grouped aggregation
//!   (including `GROUP BY ALL`), and partitioned window functions.
//! * Base-table DDL/DML: CREATE TABLE/VIEW, INSERT, DELETE, UPDATE, DROP,
//!   ALTER DYNAMIC TABLE ... SUSPEND/RESUME/REFRESH.
//!
//! The parser produces a plain AST ([`ast`]); binding and typing happen in
//! `dt-plan`.

pub mod ast;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use lexer::{tokenize, Token, TokenKind};

/// Parse a single SQL statement from source text.
pub fn parse(sql: &str) -> dt_common::DtResult<Statement> {
    let tokens = lexer::tokenize(sql)?;
    parser::Parser::new(tokens).parse_single()
}
