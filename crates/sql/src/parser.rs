//! Recursive-descent parser.

use dt_common::{DataType, DtError, DtResult, Duration};

use crate::ast::*;
use crate::lexer::{Symbol, Token, TokenKind};

/// Parse one statement (convenience wrapper used by tests).
pub fn parse_statement(tokens: Vec<Token>) -> DtResult<Statement> {
    Parser::new(tokens).parse_single()
}

/// The parser state: a token stream and a cursor.
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` placeholders seen so far; each placeholder takes the
    /// next index in parse order.
    placeholders: usize,
}

impl Parser {
    /// Build over a token stream (must end with Eof).
    pub fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            placeholders: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> DtError {
        DtError::Parse {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        self.pos += 1;
        k
    }

    /// Consume a keyword (identifier with the given lowercase text).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let TokenKind::Ident(w) = self.peek() {
            if w == kw {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(w) if w == kw)
    }

    fn expect_kw(&mut self, kw: &str) -> DtResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {}", kw.to_uppercase())))
        }
    }

    fn eat_sym(&mut self, s: Symbol) -> bool {
        if self.peek() == &TokenKind::Symbol(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, s: Symbol) -> DtResult<()> {
        if self.eat_sym(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected {s:?}")))
        }
    }

    fn expect_ident(&mut self) -> DtResult<String> {
        match self.advance() {
            TokenKind::Ident(w) => Ok(w),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_string(&mut self) -> DtResult<String> {
        match self.advance() {
            TokenKind::StringLit(s) => Ok(s),
            other => Err(self.err(format!("expected string literal, found {other:?}"))),
        }
    }

    /// Parse exactly one statement, consuming an optional trailing `;`.
    pub fn parse_single(&mut self) -> DtResult<Statement> {
        let stmt = self.parse_statement()?;
        self.eat_sym(Symbol::Semicolon);
        if self.peek() != &TokenKind::Eof {
            return Err(self.err("unexpected trailing tokens"));
        }
        Ok(stmt)
    }

    fn parse_statement(&mut self) -> DtResult<Statement> {
        if self.peek_kw("select") {
            return Ok(Statement::Query(self.parse_query()?));
        }
        if self.eat_kw("explain") {
            return Ok(Statement::Explain(self.parse_query()?));
        }
        if self.eat_kw("show") {
            if self.eat_kw("stats") {
                return Ok(Statement::ShowStats);
            }
            self.expect_kw("dynamic")?;
            self.expect_kw("tables")?;
            return Ok(Statement::ShowDynamicTables);
        }
        if self.eat_kw("create") {
            return self.parse_create();
        }
        if self.eat_kw("insert") {
            return self.parse_insert();
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.expect_ident()?;
            let predicate = if self.eat_kw("where") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_kw("update") {
            let table = self.expect_ident()?;
            self.expect_kw("set")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.expect_ident()?;
                self.expect_sym(Symbol::Eq)?;
                let value = self.parse_expr()?;
                assignments.push((col, value));
                if !self.eat_sym(Symbol::Comma) {
                    break;
                }
            }
            let predicate = if self.eat_kw("where") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                assignments,
                predicate,
            });
        }
        if self.eat_kw("drop") {
            // DROP [DYNAMIC] TABLE name | DROP VIEW name
            self.eat_kw("dynamic");
            if !self.eat_kw("table") {
                self.expect_kw("view")?;
            }
            let name = self.expect_ident()?;
            return Ok(Statement::Drop { name });
        }
        if self.eat_kw("undrop") {
            self.eat_kw("dynamic");
            self.expect_kw("table")?;
            let name = self.expect_ident()?;
            return Ok(Statement::Undrop { name });
        }
        if self.eat_kw("begin") {
            // BEGIN [TRANSACTION | WORK]
            if !self.eat_kw("transaction") {
                self.eat_kw("work");
            }
            return Ok(Statement::Begin);
        }
        if self.eat_kw("start") {
            self.expect_kw("transaction")?;
            return Ok(Statement::Begin);
        }
        if self.eat_kw("commit") {
            self.eat_kw("transaction");
            return Ok(Statement::Commit);
        }
        if self.eat_kw("rollback") {
            self.eat_kw("transaction");
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("alter") {
            // ALTER TABLE name SET LOCKING OPTIMISTIC|PESSIMISTIC|AUTO
            if self.eat_kw("table") {
                let name = self.expect_ident()?;
                self.expect_kw("set")?;
                self.expect_kw("locking")?;
                let policy = if self.eat_kw("optimistic") {
                    LockingPolicyOption::Optimistic
                } else if self.eat_kw("pessimistic") {
                    LockingPolicyOption::Pessimistic
                } else if self.eat_kw("auto") {
                    LockingPolicyOption::Auto
                } else {
                    return Err(self.err("expected OPTIMISTIC, PESSIMISTIC, or AUTO"));
                };
                return Ok(Statement::AlterTableLocking { name, policy });
            }
            self.expect_kw("dynamic")?;
            self.expect_kw("table")?;
            let name = self.expect_ident()?;
            let action = if self.eat_kw("suspend") {
                AlterDtAction::Suspend
            } else if self.eat_kw("resume") {
                AlterDtAction::Resume
            } else if self.eat_kw("refresh") {
                AlterDtAction::Refresh
            } else {
                return Err(self.err("expected SUSPEND, RESUME, or REFRESH"));
            };
            return Ok(Statement::AlterDynamicTable { name, action });
        }
        Err(self.err("expected a statement"))
    }

    fn parse_create(&mut self) -> DtResult<Statement> {
        let or_replace = if self.eat_kw("or") {
            self.expect_kw("replace")?;
            true
        } else {
            false
        };
        if self.eat_kw("dynamic") {
            self.expect_kw("table")?;
            // CREATE DYNAMIC TABLE name CLONE source
            if matches!(self.peek2(), TokenKind::Ident(w) if w == "clone") {
                let name = self.expect_ident()?;
                self.expect_kw("clone")?;
                let source = self.expect_ident()?;
                return Ok(Statement::Clone { name, source });
            }
            return self.parse_create_dynamic_table(or_replace);
        }
        if self.eat_kw("table") {
            // CREATE TABLE name CLONE source
            if matches!(self.peek2(), TokenKind::Ident(w) if w == "clone") {
                let name = self.expect_ident()?;
                self.expect_kw("clone")?;
                let source = self.expect_ident()?;
                return Ok(Statement::Clone { name, source });
            }
            let name = self.expect_ident()?;
            self.expect_sym(Symbol::LParen)?;
            let mut columns = Vec::new();
            loop {
                let col = self.expect_ident()?;
                let ty_name = self.expect_ident()?;
                columns.push((col, DataType::parse(&ty_name)?));
                if !self.eat_sym(Symbol::Comma) {
                    break;
                }
            }
            self.expect_sym(Symbol::RParen)?;
            return Ok(Statement::CreateTable {
                name,
                columns,
                or_replace,
            });
        }
        if self.eat_kw("view") {
            let name = self.expect_ident()?;
            self.expect_kw("as")?;
            let query = self.parse_query()?;
            return Ok(Statement::CreateView {
                name,
                query,
                or_replace,
            });
        }
        Err(self.err("expected TABLE, VIEW, or DYNAMIC TABLE"))
    }

    fn parse_create_dynamic_table(&mut self, or_replace: bool) -> DtResult<Statement> {
        let name = self.expect_ident()?;
        let mut target_lag = None;
        let mut warehouse = None;
        let mut refresh_mode = RefreshModeOption::Auto;
        let mut initialize_on_create = true;
        loop {
            if self.eat_kw("target_lag") {
                self.expect_sym(Symbol::Eq)?;
                target_lag = Some(if self.eat_kw("downstream") {
                    TargetLag::Downstream
                } else {
                    let s = self.expect_string()?;
                    TargetLag::Duration(Duration::parse(&s).map_err(|m| self.err(m))?)
                });
            } else if self.eat_kw("warehouse") || self.eat_kw("warheouse") {
                // "WARHEOUSE" appears verbatim in the paper's Listing 1;
                // accept the typo for fidelity.
                self.expect_sym(Symbol::Eq)?;
                warehouse = Some(self.expect_ident()?);
            } else if self.eat_kw("refresh_mode") {
                self.expect_sym(Symbol::Eq)?;
                let m = self.expect_ident()?;
                refresh_mode = match m.as_str() {
                    "auto" => RefreshModeOption::Auto,
                    "full" => RefreshModeOption::Full,
                    "incremental" => RefreshModeOption::Incremental,
                    other => return Err(self.err(format!("unknown refresh mode '{other}'"))),
                };
            } else if self.eat_kw("initialize") {
                self.expect_sym(Symbol::Eq)?;
                let m = self.expect_ident()?;
                initialize_on_create = match m.as_str() {
                    "on_create" => true,
                    "on_schedule" => false,
                    other => return Err(self.err(format!("unknown initialize option '{other}'"))),
                };
            } else {
                break;
            }
        }
        self.expect_kw("as")?;
        let query = self.parse_query()?;
        let target_lag = target_lag.ok_or_else(|| self.err("TARGET_LAG is required"))?;
        let warehouse = warehouse.ok_or_else(|| self.err("WAREHOUSE is required"))?;
        Ok(Statement::CreateDynamicTable(CreateDynamicTable {
            name,
            target_lag,
            warehouse,
            refresh_mode,
            initialize_on_create,
            query,
            or_replace,
        }))
    }

    fn parse_insert(&mut self) -> DtResult<Statement> {
        self.expect_kw("into")?;
        let table = self.expect_ident()?;
        if self.eat_kw("values") {
            let mut values = Vec::new();
            loop {
                self.expect_sym(Symbol::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_sym(Symbol::Comma) {
                        break;
                    }
                }
                self.expect_sym(Symbol::RParen)?;
                values.push(row);
                if !self.eat_sym(Symbol::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert {
                table,
                values,
                query: None,
            });
        }
        let query = self.parse_query()?;
        Ok(Statement::Insert {
            table,
            values: vec![],
            query: Some(query),
        })
    }

    /// Parse a query: SELECT block (UNION ALL SELECT block)*.
    pub fn parse_query(&mut self) -> DtResult<Query> {
        let select = self.parse_select_block()?;
        let mut union_all = Vec::new();
        while self.peek_kw("union") {
            self.advance();
            self.expect_kw("all")?;
            union_all.push(self.parse_select_block()?);
        }
        let for_update = if self.eat_kw("for") {
            self.expect_kw("update")?;
            true
        } else {
            false
        };
        Ok(Query {
            select,
            union_all,
            for_update,
        })
    }

    fn parse_select_block(&mut self) -> DtResult<SelectBlock> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_sym(Symbol::Comma) {
                break;
            }
        }
        let mut from = None;
        let mut joins = Vec::new();
        if self.eat_kw("from") {
            from = Some(self.parse_table_ref()?);
            loop {
                let join_type = if self.eat_kw("join") || self.eat_kw("inner") {
                    if self.peek_kw("join") {
                        self.advance();
                    }
                    JoinType::Inner
                } else if self.eat_kw("left") {
                    self.eat_kw("outer");
                    self.expect_kw("join")?;
                    JoinType::Left
                } else if self.eat_kw("right") {
                    self.eat_kw("outer");
                    self.expect_kw("join")?;
                    JoinType::Right
                } else if self.eat_kw("full") {
                    self.eat_kw("outer");
                    self.expect_kw("join")?;
                    JoinType::Full
                } else {
                    break;
                };
                let relation = self.parse_table_ref()?;
                self.expect_kw("on")?;
                let on = self.parse_expr()?;
                joins.push(Join {
                    join_type,
                    relation,
                    on,
                });
            }
        }
        let where_clause = if self.eat_kw("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("group") {
            self.expect_kw("by")?;
            if self.eat_kw("all") {
                GroupBy::All
            } else {
                let mut keys = Vec::new();
                loop {
                    keys.push(self.parse_expr()?);
                    if !self.eat_sym(Symbol::Comma) {
                        break;
                    }
                }
                GroupBy::Exprs(keys)
            }
        } else {
            GroupBy::None
        };
        let having = if self.eat_kw("having") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let e = self.parse_expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push((e, desc));
                if !self.eat_sym(Symbol::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.advance() {
                TokenKind::IntLit(n) if n >= 0 => Some(n as u64),
                _ => return Err(self.err("expected nonnegative integer after LIMIT")),
            }
        } else {
            None
        };
        Ok(SelectBlock {
            distinct,
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> DtResult<SelectItem> {
        if self.eat_sym(Symbol::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // alias.* form
        if let (TokenKind::Ident(q), TokenKind::Symbol(Symbol::Dot)) = (self.peek(), self.peek2()) {
            if self.tokens.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Symbol(Symbol::Star))
            {
                let q = q.clone();
                self.pos += 3;
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident()?)
        } else if let TokenKind::Ident(w) = self.peek() {
            // Implicit alias: a bare identifier that is not a clause keyword.
            const CLAUSE_KWS: &[&str] = &[
                "from", "where", "group", "having", "order", "limit", "union", "join", "inner",
                "left", "right", "full", "on", "as", "and", "or", "not", "between", "in", "is",
                "when", "then", "else", "end", "asc", "desc", "for",
            ];
            if CLAUSE_KWS.contains(&w.as_str()) {
                None
            } else {
                let w = w.clone();
                self.pos += 1;
                Some(w)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> DtResult<TableRef> {
        if self.eat_sym(Symbol::LParen) {
            let query = self.parse_query()?;
            if query.for_update {
                return Err(self.err(
                    "FOR UPDATE is not allowed in a subquery; apply it to the \
                     outer query",
                ));
            }
            self.expect_sym(Symbol::RParen)?;
            self.eat_kw("as");
            let alias = self.expect_ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.expect_ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.expect_ident()?)
        } else if let TokenKind::Ident(w) = self.peek() {
            const CLAUSE_KWS: &[&str] = &[
                "join", "inner", "left", "right", "full", "on", "where", "group", "having",
                "order", "limit", "union", "for",
            ];
            if CLAUSE_KWS.contains(&w.as_str()) {
                None
            } else {
                let w = w.clone();
                self.pos += 1;
                Some(w)
            }
        } else {
            None
        };
        Ok(TableRef::Named { name, alias })
    }

    /// Expression precedence: OR < AND < NOT < comparison < additive <
    /// multiplicative < unary minus < postfix `::type` < primary.
    pub fn parse_expr(&mut self) -> DtResult<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> DtResult<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("or") {
            let right = self.parse_and()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> DtResult<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("and") {
            let right = self.parse_not()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> DtResult<Expr> {
        if self.eat_kw("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> DtResult<Expr> {
        let left = self.parse_additive()?;
        // IS [NOT] NULL
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / BETWEEN
        let negated = if self.peek_kw("not")
            && matches!(self.peek2(), TokenKind::Ident(w) if w == "in" || w == "between")
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("in") {
            self.expect_sym(Symbol::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat_sym(Symbol::Comma) {
                    break;
                }
            }
            self.expect_sym(Symbol::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("between") {
            let low = self.parse_additive()?;
            self.expect_kw("and")?;
            let high = self.parse_additive()?;
            let between = Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            };
            return Ok(if negated {
                Expr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(between),
                }
            } else {
                between
            });
        }
        let op = match self.peek() {
            TokenKind::Symbol(Symbol::Eq) => BinaryOp::Eq,
            TokenKind::Symbol(Symbol::NotEq) => BinaryOp::NotEq,
            TokenKind::Symbol(Symbol::Lt) => BinaryOp::Lt,
            TokenKind::Symbol(Symbol::LtEq) => BinaryOp::LtEq,
            TokenKind::Symbol(Symbol::Gt) => BinaryOp::Gt,
            TokenKind::Symbol(Symbol::GtEq) => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn parse_additive(&mut self) -> DtResult<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol(Symbol::Plus) => BinaryOp::Add,
                TokenKind::Symbol(Symbol::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> DtResult<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Symbol(Symbol::Star) => BinaryOp::Mul,
                TokenKind::Symbol(Symbol::Slash) => BinaryOp::Div,
                TokenKind::Symbol(Symbol::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> DtResult<Expr> {
        if self.eat_sym(Symbol::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> DtResult<Expr> {
        let mut e = self.parse_primary()?;
        while self.eat_sym(Symbol::DoubleColon) {
            let ty = DataType::parse(&self.expect_ident()?)?;
            e = Expr::Cast {
                expr: Box::new(e),
                ty,
            };
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> DtResult<Expr> {
        match self.advance() {
            TokenKind::IntLit(n) => Ok(Expr::Int(n)),
            TokenKind::FloatLit(f) => Ok(Expr::Float(f)),
            TokenKind::StringLit(s) => Ok(Expr::String(s)),
            TokenKind::Symbol(Symbol::LParen) => {
                let e = self.parse_expr()?;
                self.expect_sym(Symbol::RParen)?;
                Ok(e)
            }
            TokenKind::Symbol(Symbol::Question) => {
                let idx = self.placeholders;
                self.placeholders += 1;
                Ok(Expr::Placeholder(idx))
            }
            TokenKind::Ident(word) => self.parse_ident_expr(word),
            other => Err(self.err(format!("unexpected token {other:?} in expression"))),
        }
    }

    fn parse_ident_expr(&mut self, word: String) -> DtResult<Expr> {
        match word.as_str() {
            "null" => return Ok(Expr::Null),
            "true" => return Ok(Expr::Bool(true)),
            "false" => return Ok(Expr::Bool(false)),
            "interval" => {
                let s = self.expect_string()?;
                let d = Duration::parse(&s).map_err(|m| self.err(m))?;
                return Ok(Expr::Interval(d));
            }
            "cast" => {
                self.expect_sym(Symbol::LParen)?;
                let e = self.parse_expr()?;
                self.expect_kw("as")?;
                let ty = DataType::parse(&self.expect_ident()?)?;
                self.expect_sym(Symbol::RParen)?;
                return Ok(Expr::Cast {
                    expr: Box::new(e),
                    ty,
                });
            }
            "case" => {
                let mut when_then = Vec::new();
                while self.eat_kw("when") {
                    let c = self.parse_expr()?;
                    self.expect_kw("then")?;
                    let v = self.parse_expr()?;
                    when_then.push((c, v));
                }
                let else_value = if self.eat_kw("else") {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                self.expect_kw("end")?;
                if when_then.is_empty() {
                    return Err(self.err("CASE requires at least one WHEN arm"));
                }
                return Ok(Expr::Case {
                    when_then,
                    else_value,
                });
            }
            _ => {}
        }
        // Function call?
        if self.peek() == &TokenKind::Symbol(Symbol::LParen) {
            self.advance();
            let distinct = self.eat_kw("distinct");
            let mut args = Vec::new();
            if self.peek() != &TokenKind::Symbol(Symbol::RParen) {
                loop {
                    if self.eat_sym(Symbol::Star) {
                        args.push(FunctionArg::Wildcard);
                    } else {
                        args.push(FunctionArg::Expr(self.parse_expr()?));
                    }
                    if !self.eat_sym(Symbol::Comma) {
                        break;
                    }
                }
            }
            self.expect_sym(Symbol::RParen)?;
            // OVER clause → window function.
            if self.eat_kw("over") {
                self.expect_sym(Symbol::LParen)?;
                let mut partition_by = Vec::new();
                let mut order_by = Vec::new();
                if self.eat_kw("partition") {
                    self.expect_kw("by")?;
                    loop {
                        partition_by.push(self.parse_expr()?);
                        if !self.eat_sym(Symbol::Comma) {
                            break;
                        }
                    }
                }
                if self.eat_kw("order") {
                    self.expect_kw("by")?;
                    loop {
                        let e = self.parse_expr()?;
                        let desc = if self.eat_kw("desc") {
                            true
                        } else {
                            self.eat_kw("asc");
                            false
                        };
                        order_by.push((e, desc));
                        if !self.eat_sym(Symbol::Comma) {
                            break;
                        }
                    }
                }
                self.expect_sym(Symbol::RParen)?;
                if distinct {
                    return Err(self.err("DISTINCT is not supported in window functions"));
                }
                return Ok(Expr::WindowFunction {
                    name: word,
                    args,
                    partition_by,
                    order_by,
                });
            }
            return Ok(Expr::Function {
                name: word,
                args,
                distinct,
            });
        }
        // Qualified column: a.b
        if self.peek() == &TokenKind::Symbol(Symbol::Dot) {
            self.advance();
            let col = self.expect_ident()?;
            return Ok(Expr::Column {
                qualifier: Some(word),
                name: col,
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name: word,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(sql: &str) -> Statement {
        Parser::new(tokenize(sql).unwrap()).parse_single().unwrap()
    }

    fn parse_err(sql: &str) -> DtError {
        Parser::new(tokenize(sql).unwrap())
            .parse_single()
            .unwrap_err()
    }

    #[test]
    fn simple_select() {
        let s = parse("SELECT a, b + 1 AS c FROM t WHERE a > 2;");
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.select.items.len(), 2);
        assert!(q.select.where_clause.is_some());
        assert!(q.union_all.is_empty());
    }

    #[test]
    fn joins_of_all_types() {
        let s = parse(
            "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y \
             RIGHT OUTER JOIN d ON c.z = d.z FULL OUTER JOIN e ON d.w = e.w",
        );
        let Statement::Query(q) = s else { panic!() };
        let types: Vec<_> = q.select.joins.iter().map(|j| j.join_type).collect();
        assert_eq!(
            types,
            vec![JoinType::Inner, JoinType::Left, JoinType::Right, JoinType::Full]
        );
    }

    #[test]
    fn group_by_all_and_having() {
        let s = parse("SELECT k, count(*) c FROM t GROUP BY ALL HAVING count(*) > 1");
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.select.group_by, GroupBy::All);
        assert!(q.select.having.is_some());
    }

    #[test]
    fn union_all_chain() {
        let s = parse("SELECT a FROM t UNION ALL SELECT a FROM u UNION ALL SELECT a FROM v");
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.union_all.len(), 2);
    }

    #[test]
    fn window_function() {
        let s = parse("SELECT sum(x) OVER (PARTITION BY k ORDER BY ts DESC) FROM t");
        let Statement::Query(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.select.items[0] else {
            panic!()
        };
        let Expr::WindowFunction {
            partition_by,
            order_by,
            ..
        } = expr
        else {
            panic!("expected window function, got {expr:?}")
        };
        assert_eq!(partition_by.len(), 1);
        assert!(order_by[0].1, "DESC flag");
    }

    #[test]
    fn create_dynamic_table_listing_1() {
        // Second DT of the paper's Listing 1 (adapted: variant paths become
        // plain columns).
        let s = parse(
            "CREATE DYNAMIC TABLE delayed_trains \
             TARGET_LAG = '1 minute' \
             WAREHOUSE = trains_wh \
             AS SELECT train_id, \
                date_trunc('hour', s.expected_arrival_time) hour, \
                count_if(arrival_time - s.expected_arrival_time > INTERVAL '10 minutes') num_delays \
             FROM train_arrivals a \
             JOIN schedule s ON a.schedule_id = s.id \
             GROUP BY ALL;",
        );
        let Statement::CreateDynamicTable(dt) = s else {
            panic!()
        };
        assert_eq!(dt.name, "delayed_trains");
        assert_eq!(
            dt.target_lag,
            TargetLag::Duration(Duration::from_mins(1))
        );
        assert_eq!(dt.warehouse, "trains_wh");
        assert_eq!(dt.query.select.joins.len(), 1);
    }

    #[test]
    fn create_dynamic_table_downstream_and_typo() {
        let s = parse(
            "CREATE DYNAMIC TABLE t TARGET_LAG = DOWNSTREAM WARHEOUSE = wh AS SELECT 1 x",
        );
        let Statement::CreateDynamicTable(dt) = s else {
            panic!()
        };
        assert_eq!(dt.target_lag, TargetLag::Downstream);
    }

    #[test]
    fn create_dt_requires_lag_and_warehouse() {
        let e = parse_err("CREATE DYNAMIC TABLE t WAREHOUSE = wh AS SELECT 1 x");
        assert!(matches!(e, DtError::Parse { .. }));
        let e = parse_err("CREATE DYNAMIC TABLE t TARGET_LAG = '1 minute' AS SELECT 1 x");
        assert!(matches!(e, DtError::Parse { .. }));
    }

    #[test]
    fn insert_values_and_query_forms() {
        let s = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')");
        let Statement::Insert { values, query, .. } = s else {
            panic!()
        };
        assert_eq!(values.len(), 2);
        assert!(query.is_none());

        let s = parse("INSERT INTO t SELECT * FROM u");
        let Statement::Insert { values, query, .. } = s else {
            panic!()
        };
        assert!(values.is_empty());
        assert!(query.is_some());
    }

    #[test]
    fn update_and_delete() {
        let s = parse("UPDATE t SET a = a + 1, b = 'x' WHERE a < 10");
        let Statement::Update { assignments, .. } = s else {
            panic!()
        };
        assert_eq!(assignments.len(), 2);

        let s = parse("DELETE FROM t WHERE a = 1");
        assert!(matches!(s, Statement::Delete { .. }));
        let s = parse("DELETE FROM t");
        let Statement::Delete { predicate, .. } = s else {
            panic!()
        };
        assert!(predicate.is_none());
    }

    #[test]
    fn alter_dynamic_table_actions() {
        for (sql, action) in [
            ("ALTER DYNAMIC TABLE t SUSPEND", AlterDtAction::Suspend),
            ("ALTER DYNAMIC TABLE t RESUME", AlterDtAction::Resume),
            ("ALTER DYNAMIC TABLE t REFRESH", AlterDtAction::Refresh),
        ] {
            let s = parse(sql);
            let Statement::AlterDynamicTable { action: a, .. } = s else {
                panic!()
            };
            assert_eq!(a, action);
        }
    }

    #[test]
    fn expression_precedence() {
        let s = parse("SELECT 1 + 2 * 3 = 7 AND true OR false");
        let Statement::Query(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.select.items[0] else {
            panic!()
        };
        // Top must be OR.
        assert!(matches!(
            expr,
            Expr::Binary {
                op: BinaryOp::Or,
                ..
            }
        ));
    }

    #[test]
    fn between_in_isnull_case() {
        parse("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1,2,3) AND c IS NOT NULL");
        parse("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t");
        parse("SELECT * FROM t WHERE a NOT IN (1, 2)");
    }

    #[test]
    fn double_colon_cast() {
        let s = parse("SELECT x::float FROM t");
        let Statement::Query(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.select.items[0] else {
            panic!()
        };
        assert!(matches!(expr, Expr::Cast { .. }));
    }

    #[test]
    fn subquery_in_from() {
        let s = parse("SELECT y FROM (SELECT x AS y FROM t) AS sub WHERE y > 0");
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(q.select.from, Some(TableRef::Subquery { .. })));
    }

    #[test]
    fn placeholders_number_left_to_right() {
        let s = parse("SELECT k + ? FROM t WHERE v BETWEEN ? AND ?");
        assert_eq!(s.placeholder_count(), 3);
        let Statement::Query(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.select.items[0] else {
            panic!()
        };
        let Expr::Binary { right, .. } = expr else { panic!() };
        assert_eq!(**right, Expr::Placeholder(0));
    }

    #[test]
    fn placeholders_in_insert_values() {
        let s = parse("INSERT INTO t VALUES (?, ?), (?, 4)");
        assert_eq!(s.placeholder_count(), 3);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = parse_err("SELECT 1 x SELECT");
        assert!(matches!(e, DtError::Parse { .. }));
    }

    #[test]
    fn drop_and_undrop() {
        assert!(matches!(parse("DROP TABLE t"), Statement::Drop { .. }));
        assert!(matches!(
            parse("DROP DYNAMIC TABLE t"),
            Statement::Drop { .. }
        ));
        assert!(matches!(parse("UNDROP TABLE t"), Statement::Undrop { .. }));
    }

    #[test]
    fn order_by_and_limit() {
        let s = parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 10");
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.select.order_by.len(), 2);
        assert!(q.select.order_by[0].1);
        assert!(!q.select.order_by[1].1);
        assert_eq!(q.select.limit, Some(10));
    }

    #[test]
    fn transaction_control_statements() {
        assert_eq!(parse("BEGIN"), Statement::Begin);
        assert_eq!(parse("BEGIN TRANSACTION"), Statement::Begin);
        assert_eq!(parse("begin work;"), Statement::Begin);
        assert_eq!(parse("START TRANSACTION"), Statement::Begin);
        assert_eq!(parse("COMMIT"), Statement::Commit);
        assert_eq!(parse("COMMIT TRANSACTION"), Statement::Commit);
        assert_eq!(parse("ROLLBACK"), Statement::Rollback);
        assert_eq!(parse("rollback transaction"), Statement::Rollback);
        // START without TRANSACTION is not a statement.
        assert!(matches!(parse_err("START"), DtError::Parse { .. }));
        // Trailing garbage is still rejected.
        assert!(matches!(parse_err("BEGIN COMMIT"), DtError::Parse { .. }));
    }

    #[test]
    fn select_for_update() {
        let s = parse("SELECT * FROM t WHERE k = 1 FOR UPDATE");
        let Statement::Query(q) = s else { panic!() };
        assert!(q.for_update);
        // Without the clause the flag stays clear, and `for` is not
        // swallowed as an implicit alias.
        let s = parse("SELECT a FROM t ORDER BY a LIMIT 1 FOR UPDATE;");
        let Statement::Query(q) = s else { panic!() };
        assert!(q.for_update);
        assert_eq!(q.select.limit, Some(1));
        let s = parse("SELECT a FROM t");
        let Statement::Query(q) = s else { panic!() };
        assert!(!q.for_update);
        // FOR must be followed by UPDATE.
        assert!(matches!(parse_err("SELECT a FROM t FOR"), DtError::Parse { .. }));
        // Not allowed inside a FROM-clause subquery.
        let e = parse_err("SELECT * FROM (SELECT a FROM t FOR UPDATE) s");
        assert!(matches!(e, DtError::Parse { .. }));
        assert!(e.to_string().contains("subquery"), "{e}");
    }

    #[test]
    fn alter_table_set_locking() {
        for (sql, policy) in [
            ("ALTER TABLE t SET LOCKING OPTIMISTIC", LockingPolicyOption::Optimistic),
            ("ALTER TABLE t SET LOCKING PESSIMISTIC", LockingPolicyOption::Pessimistic),
            ("alter table t set locking auto;", LockingPolicyOption::Auto),
        ] {
            let s = parse(sql);
            let Statement::AlterTableLocking { name, policy: p } = s else {
                panic!("expected AlterTableLocking for {sql}")
            };
            assert_eq!(name, "t");
            assert_eq!(p, policy);
        }
        assert!(matches!(
            parse_err("ALTER TABLE t SET LOCKING SOMETIMES"),
            DtError::Parse { .. }
        ));
        // The DT form still parses.
        assert!(matches!(
            parse("ALTER DYNAMIC TABLE t SUSPEND"),
            Statement::AlterDynamicTable { .. }
        ));
    }

    #[test]
    fn count_star_and_distinct() {
        let s = parse("SELECT count(*), count(DISTINCT x) FROM t");
        let Statement::Query(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.select.items[1] else {
            panic!()
        };
        let Expr::Function { distinct, .. } = expr else {
            panic!()
        };
        assert!(distinct);
    }
}
