//! Change sets: the multiset difference between two table versions.

use std::collections::HashMap;

use dt_common::Row;

/// One row-level change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RowDelta {
    /// The row was inserted.
    Insert(Row),
    /// The row was deleted.
    Delete(Row),
}

impl RowDelta {
    /// The row payload regardless of direction.
    pub fn row(&self) -> &Row {
        match self {
            RowDelta::Insert(r) | RowDelta::Delete(r) => r,
        }
    }

    /// +1 for insert, -1 for delete (the commutative-group view of changes
    /// used by DBSP-style IVM, which our differentiation rules follow).
    pub fn weight(&self) -> i64 {
        match self {
            RowDelta::Insert(_) => 1,
            RowDelta::Delete(_) => -1,
        }
    }
}

/// A multiset of inserted and deleted rows between two versions of a table
/// (or of a query result). Internally kept as rows with signed weights so
/// consolidation is a single pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChangeSet {
    inserts: Vec<Row>,
    deletes: Vec<Row>,
}

impl ChangeSet {
    /// An empty change set.
    pub fn empty() -> Self {
        ChangeSet::default()
    }

    /// Build from insert and delete row multisets.
    pub fn new(inserts: Vec<Row>, deletes: Vec<Row>) -> Self {
        ChangeSet { inserts, deletes }
    }

    /// Inserted rows.
    pub fn inserts(&self) -> &[Row] {
        &self.inserts
    }

    /// Deleted rows.
    pub fn deletes(&self) -> &[Row] {
        &self.deletes
    }

    /// Add an insert.
    pub fn push_insert(&mut self, r: Row) {
        self.inserts.push(r);
    }

    /// Add a delete.
    pub fn push_delete(&mut self, r: Row) {
        self.deletes.push(r);
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total number of change rows (inserts + deletes) — the metric the
    /// paper uses for "output changed rows" in §6.3.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// Merge another change set into this one (interval composition: the
    /// changes over `[a,b]` followed by `[b,c]` compose to `[a,c]`, which is how
    /// a refresh following a *skip* covers the skipped interval, §3.3.3).
    pub fn extend(&mut self, other: ChangeSet) {
        self.inserts.extend(other.inserts);
        self.deletes.extend(other.deletes);
    }

    /// Cancel matching insert/delete pairs (the read-amplification
    /// elimination of §5.5.2): a row that was deleted and re-inserted
    /// verbatim — e.g. because copy-on-write rewrote its partition — is not
    /// a logical change. Returns the consolidated set, in which any given
    /// row appears only as net inserts or net deletes.
    pub fn consolidate(self) -> ChangeSet {
        let mut weights: HashMap<Row, i64> = HashMap::new();
        for r in self.inserts {
            *weights.entry(r).or_insert(0) += 1;
        }
        for r in self.deletes {
            *weights.entry(r).or_insert(0) -= 1;
        }
        let mut out = ChangeSet::empty();
        // Deterministic output order for tests: sort by row.
        let mut entries: Vec<(Row, i64)> = weights.into_iter().filter(|(_, w)| *w != 0).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        for (row, w) in entries {
            if w > 0 {
                for _ in 0..w {
                    out.inserts.push(row.clone());
                }
            } else {
                for _ in 0..(-w) {
                    out.deletes.push(row.clone());
                }
            }
        }
        out
    }

    /// Iterate as signed deltas.
    pub fn deltas(&self) -> impl Iterator<Item = RowDelta> + '_ {
        self.deletes
            .iter()
            .map(|r| RowDelta::Delete(r.clone()))
            .chain(self.inserts.iter().map(|r| RowDelta::Insert(r.clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::row;

    #[test]
    fn consolidation_cancels_copies() {
        let cs = ChangeSet::new(
            vec![row!(1i64), row!(2i64), row!(2i64)],
            vec![row!(1i64), row!(2i64), row!(3i64)],
        );
        let c = cs.consolidate();
        assert_eq!(c.inserts(), &[row!(2i64)]);
        assert_eq!(c.deletes(), &[row!(3i64)]);
    }

    #[test]
    fn consolidation_preserves_multiplicity() {
        let cs = ChangeSet::new(vec![row!(5i64), row!(5i64), row!(5i64)], vec![row!(5i64)]);
        let c = cs.consolidate();
        assert_eq!(c.inserts().len(), 2);
        assert!(c.deletes().is_empty());
    }

    #[test]
    fn extend_composes_intervals() {
        let mut a = ChangeSet::new(vec![row!(1i64)], vec![]);
        let b = ChangeSet::new(vec![row!(2i64)], vec![row!(1i64)]);
        a.extend(b);
        let c = a.consolidate();
        assert_eq!(c.inserts(), &[row!(2i64)]);
        assert!(c.deletes().is_empty());
    }

    #[test]
    fn weights() {
        assert_eq!(RowDelta::Insert(row!(1i64)).weight(), 1);
        assert_eq!(RowDelta::Delete(row!(1i64)).weight(), -1);
    }

    #[test]
    fn empty_and_len() {
        let mut cs = ChangeSet::empty();
        assert!(cs.is_empty());
        cs.push_insert(row!(9i64));
        cs.push_delete(row!(8i64));
        assert_eq!(cs.len(), 2);
        assert!(!cs.is_empty());
    }
}
