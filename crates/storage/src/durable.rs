//! Durable forms of storage state: the WAL's physical install record and
//! the checkpoint image of a whole [`TableStore`].
//!
//! Both are *physical*, not logical. A WAL install record carries the
//! exact partitions a committed change minted (ids included) and the new
//! version's metadata, so replay reconstructs the identical version chain
//! — same partition ids, same added/removed deltas — rather than
//! re-running the change and minting fresh ids. That is what makes a
//! recovered engine answer change scans and time-travel queries
//! byte-identically to the engine that crashed.

use dt_common::{DtError, DtResult, PartitionId, Row, Schema, Timestamp, TxnId, VersionId};
use dt_wal::codec::{get_row, get_schema, put_row, put_schema, Reader, Writer};

use crate::table::TableStore;
use crate::version::TableVersion;

/// The physical contents of one version install, extracted from a
/// `PreparedChange` before the install consumes it and logged to the WAL
/// by the group-commit leader. `commit_ts`, the transaction id, and the
/// owning entity travel in the WAL record envelope (`dt-core`), not here.
#[derive(Debug, Clone, PartialEq)]
pub struct VersionInstallRecord {
    /// Freshly minted partitions: `(id, rows)`. Ids are preserved so
    /// replay rebuilds the same partition pool.
    pub new_parts: Vec<(PartitionId, Vec<Row>)>,
    /// All partitions visible at the new version, in scan order.
    pub partitions: Vec<PartitionId>,
    /// Partitions added relative to the previous version.
    pub added: Vec<PartitionId>,
    /// Partitions removed relative to the previous version.
    pub removed: Vec<PartitionId>,
    /// Total row count at the new version.
    pub row_count: usize,
}

/// A complete, self-contained image of one [`TableStore`] as written into
/// a checkpoint: schema, partition pool, and the full version chain
/// (which is what keeps time travel and `UNDROP` working across a
/// restart).
#[derive(Debug, Clone)]
pub struct StoreCheckpoint {
    /// The table's schema.
    pub schema: Schema,
    /// Micro-partition capacity the store slices inserts into.
    pub partition_capacity: usize,
    /// The next partition id the store would mint.
    pub next_partition: u64,
    /// Every live partition, sorted by id.
    pub partitions: Vec<(PartitionId, Vec<Row>)>,
    /// The full version chain, oldest first.
    pub versions: Vec<TableVersion>,
}

impl StoreCheckpoint {
    /// Rebuild the store this checkpoint describes.
    pub fn restore(self) -> DtResult<TableStore> {
        TableStore::from_checkpoint(self)
    }
}

fn put_partition_ids(w: &mut Writer, ids: &[PartitionId]) {
    w.put_len(ids.len());
    for id in ids {
        w.put_u64(id.raw());
    }
}

fn get_partition_ids(r: &mut Reader<'_>) -> DtResult<Vec<PartitionId>> {
    let n = r.get_len(8)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(PartitionId(r.get_u64()?));
    }
    Ok(ids)
}

fn put_parts(w: &mut Writer, parts: &[(PartitionId, Vec<Row>)]) {
    w.put_len(parts.len());
    for (id, rows) in parts {
        w.put_u64(id.raw());
        w.put_len(rows.len());
        for row in rows {
            put_row(w, row);
        }
    }
}

fn get_parts(r: &mut Reader<'_>) -> DtResult<Vec<(PartitionId, Vec<Row>)>> {
    // A partition is at least an 8-byte id + 4-byte row count.
    let n = r.get_len(12)?;
    let mut parts = Vec::with_capacity(n);
    for _ in 0..n {
        let id = PartitionId(r.get_u64()?);
        let rows_n = r.get_len(4)?;
        let mut rows = Vec::with_capacity(rows_n);
        for _ in 0..rows_n {
            rows.push(get_row(r)?);
        }
        parts.push((id, rows));
    }
    Ok(parts)
}

/// Encode a [`VersionInstallRecord`].
pub fn put_install_record(w: &mut Writer, rec: &VersionInstallRecord) {
    put_parts(w, &rec.new_parts);
    put_partition_ids(w, &rec.partitions);
    put_partition_ids(w, &rec.added);
    put_partition_ids(w, &rec.removed);
    w.put_u64(rec.row_count as u64);
}

/// Decode a [`VersionInstallRecord`].
pub fn get_install_record(r: &mut Reader<'_>) -> DtResult<VersionInstallRecord> {
    Ok(VersionInstallRecord {
        new_parts: get_parts(r)?,
        partitions: get_partition_ids(r)?,
        added: get_partition_ids(r)?,
        removed: get_partition_ids(r)?,
        row_count: r.get_u64()? as usize,
    })
}

fn put_version(w: &mut Writer, v: &TableVersion) {
    w.put_u64(v.id.raw());
    w.put_i64(v.commit_ts.as_micros());
    w.put_u64(v.created_by.raw());
    put_partition_ids(w, &v.partitions);
    put_partition_ids(w, &v.added);
    put_partition_ids(w, &v.removed);
    w.put_bool(v.data_equivalent);
    w.put_u64(v.row_count as u64);
}

fn get_version(r: &mut Reader<'_>) -> DtResult<TableVersion> {
    Ok(TableVersion {
        id: VersionId(r.get_u64()?),
        commit_ts: Timestamp::from_micros(r.get_i64()?),
        created_by: TxnId(r.get_u64()?),
        partitions: get_partition_ids(r)?,
        added: get_partition_ids(r)?,
        removed: get_partition_ids(r)?,
        data_equivalent: r.get_bool()?,
        row_count: r.get_u64()? as usize,
    })
}

/// Encode a [`StoreCheckpoint`].
pub fn put_store(w: &mut Writer, ck: &StoreCheckpoint) {
    put_schema(w, &ck.schema);
    w.put_u64(ck.partition_capacity as u64);
    w.put_u64(ck.next_partition);
    put_parts(w, &ck.partitions);
    w.put_len(ck.versions.len());
    for v in &ck.versions {
        put_version(w, v);
    }
}

/// Decode a [`StoreCheckpoint`].
pub fn get_store(r: &mut Reader<'_>) -> DtResult<StoreCheckpoint> {
    let schema = get_schema(r)?;
    let partition_capacity = r.get_u64()? as usize;
    let next_partition = r.get_u64()?;
    let partitions = get_parts(r)?;
    // A version is at least id + ts + txn + three counts + flag + rows.
    let n = r.get_len(45)?;
    let mut versions = Vec::with_capacity(n);
    for _ in 0..n {
        versions.push(get_version(r)?);
    }
    if versions.is_empty() {
        return Err(DtError::Corruption(
            "store checkpoint has an empty version chain".into(),
        ));
    }
    Ok(StoreCheckpoint {
        schema,
        partition_capacity,
        next_partition,
        partitions,
        versions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{row, Column, DataType};

    fn int_table(cap: usize) -> TableStore {
        TableStore::with_partition_capacity(
            Schema::new(vec![Column::new("x", DataType::Int)]),
            Timestamp::EPOCH,
            TxnId(0),
            cap,
        )
    }

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn install_record_replays_to_identical_physical_state() {
        let t = int_table(2);
        let v1 = t
            .commit_change(
                vec![row!(1i64), row!(2i64), row!(3i64)],
                vec![],
                ts(1),
                TxnId(1),
            )
            .unwrap();
        let prep = t
            .prepare_change_at(v1, vec![row!(9i64)], vec![row!(2i64)])
            .unwrap();
        let rec = prep.install_record();

        // Encode/decode the record like the WAL would.
        let mut w = Writer::new();
        put_install_record(&mut w, &rec);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = get_install_record(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, rec);

        // Install on the original; replay on a sibling that saw only v1.
        let replica = {
            let s = int_table(2);
            let p1 = s
                .prepare_change_at(VersionId(0), vec![row!(1i64), row!(2i64), row!(3i64)], vec![])
                .unwrap();
            s.replay_install(&p1.install_record(), ts(1), TxnId(1)).unwrap();
            s
        };
        let v2 = t.install_prepared(prep, ts(2), TxnId(2)).unwrap();
        let rv2 = replica.replay_install(&decoded, ts(2), TxnId(2)).unwrap();
        assert_eq!(v2, rv2);
        assert_eq!(t.scan(v2).unwrap(), replica.scan(rv2).unwrap());
        // Change scans agree too — the physical deltas were preserved.
        assert_eq!(
            t.changes_between(v1, v2).unwrap().inserts(),
            replica.changes_between(v1, rv2).unwrap().inserts()
        );
        // And the replica mints fresh partition ids past the replayed ones.
        replica
            .commit_change(vec![row!(50i64)], vec![], ts(3), TxnId(3))
            .unwrap();
    }

    #[test]
    fn store_checkpoint_round_trips() {
        let t = int_table(2);
        t.commit_change(
            vec![row!(1i64), row!(2i64), row!(3i64)],
            vec![],
            ts(1),
            TxnId(1),
        )
        .unwrap();
        t.commit_change(vec![row!(4i64)], vec![row!(2i64)], ts(2), TxnId(2))
            .unwrap();

        let ck = t.checkpoint_dump();
        let mut w = Writer::new();
        put_store(&mut w, &ck);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let restored = get_store(&mut r).unwrap().restore().unwrap();
        r.finish().unwrap();

        assert_eq!(restored.version_count(), t.version_count());
        assert_eq!(restored.latest_version(), t.latest_version());
        assert_eq!(restored.schema().columns(), t.schema().columns());
        for v in 0..t.version_count() as u64 {
            let v = VersionId(v);
            assert_eq!(restored.scan(v).unwrap(), t.scan(v).unwrap());
            assert_eq!(
                restored.commit_ts_of(v).unwrap(),
                t.commit_ts_of(v).unwrap()
            );
        }
        // The restored store keeps committing where the original left off.
        restored
            .commit_change(vec![row!(10i64)], vec![], ts(3), TxnId(3))
            .unwrap();
    }

    #[test]
    fn empty_version_chain_is_corruption() {
        let mut w = Writer::new();
        put_schema(&mut w, &Schema::new(vec![Column::new("x", DataType::Int)]));
        w.put_u64(64);
        w.put_u64(0);
        w.put_len(0); // no partitions
        w.put_len(0); // no versions
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(get_store(&mut r), Err(DtError::Corruption(_))));
    }
}
