//! Copy-on-write, versioned table storage.
//!
//! This crate reproduces the storage substrate that Dynamic Tables builds on
//! (§5.1, §5.5.2 of the paper):
//!
//! * Tables are stored as sets of immutable **micro-partitions**
//!   ([`partition::Partition`]).
//! * Every committed change produces a new immutable **table version**
//!   ([`version::TableVersion`]) that records which partitions were *added*
//!   and *removed* relative to its parent — the copy-on-write scheme that
//!   powers Snowflake's change tracking and time travel.
//! * **Change scans** ([`change::ChangeSet`]) between two versions are
//!   computed from the added/removed partition sets, including the
//!   *consolidation* step that cancels rows copied verbatim between
//!   partitions (the read-amplification fix of §5.5.2) and detection of
//!   *data-equivalent* maintenance operations (reclustering/defragmentation)
//!   that change files but not logical contents.
//! * **Time travel**: any version can be resolved by commit timestamp
//!   ([`table::TableStore::version_at`]), the mechanism snapshot reads and
//!   DVS rely on.
//! * **Pinned snapshots** ([`snapshot::TableSnapshot`]): any version can be
//!   pinned as a lock-free handle over its immutable partitions, which is
//!   what lets the engine's MVCC read path execute entire queries without
//!   holding any lock (§5.3).
//! * **Two-phase optimistic commits** ([`table::TableStore::prepare_change_at`]
//!   / [`table::TableStore::install_prepared`]): all row work of a change is
//!   done lock-free against a pinned base version, and the install is an
//!   O(metadata) step that validates the base is still the latest — the
//!   first-committer-wins substrate of the engine's transaction commits,
//!   which lets a multi-table transaction install every touched table's
//!   version at one commit timestamp.

pub mod change;
pub mod durable;
pub mod partition;
pub mod snapshot;
pub mod table;
pub mod telemetry;
pub mod version;

pub use change::{ChangeSet, RowDelta};
pub use durable::{StoreCheckpoint, VersionInstallRecord};
pub use partition::{ColumnarPartition, Partition};
pub use snapshot::TableSnapshot;
pub use table::{CommitGuard, PreparedChange, TableStore, DEFAULT_PARTITION_CAPACITY};
pub use telemetry::zone_map_pruned_total;
pub use version::TableVersion;
