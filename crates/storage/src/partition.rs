//! Immutable micro-partitions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dt_common::{Batch, ColumnVec, PartitionId, Row, ZoneMap};

/// The columnar shadow of a partition: per-column vectors plus per-column
/// zone maps, both computed once when the partition is minted (commit
/// time). Scans slice [`Batch`]es straight out of the shared column
/// `Arc`s — zero copy — and zone maps let filtered scans skip the
/// partition without touching its data at all.
#[derive(Debug)]
pub struct ColumnarPartition {
    columns: Vec<Arc<ColumnVec>>,
    zone_maps: Vec<ZoneMap>,
    /// Number of times this partition's column *data* was handed to a
    /// scan. Zone-map checks don't count — that is the point: a pruned
    /// partition's counter stays put, and tests assert it.
    data_reads: AtomicU64,
}

impl ColumnarPartition {
    fn build(rows: &[Row]) -> Option<ColumnarPartition> {
        let arity = match rows.first() {
            Some(r) => r.len(),
            None => 0,
        };
        // Ragged rows (arity drift) can't be shredded; scans fall back to
        // the row representation. Committed table data is never ragged.
        if rows.iter().any(|r| r.len() != arity) {
            return None;
        }
        let columns: Vec<Arc<ColumnVec>> = (0..arity)
            .map(|c| {
                Arc::new(ColumnVec::from_values(
                    rows.iter().map(|r| r.get(c).clone()).collect(),
                ))
            })
            .collect();
        let zone_maps = columns.iter().map(|c| c.zone_map()).collect();
        Some(ColumnarPartition {
            columns,
            zone_maps,
            data_reads: AtomicU64::new(0),
        })
    }

    /// Per-column zone maps (consulting these is not a data read).
    pub fn zone_maps(&self) -> &[ZoneMap] {
        &self.zone_maps
    }

    /// How many times column data was handed out to scans.
    pub fn data_reads(&self) -> u64 {
        self.data_reads.load(Ordering::Relaxed)
    }
}

/// An immutable run of rows. Once created a partition's contents never
/// change; DML rewrites partitions wholesale (copy-on-write), which is what
/// makes version chains and change scans cheap. Alongside the row form a
/// partition carries a [`ColumnarPartition`] for the vectorized read path.
#[derive(Debug, Clone)]
pub struct Partition {
    id: PartitionId,
    rows: Arc<Vec<Row>>,
    columnar: Option<Arc<ColumnarPartition>>,
}

impl Partition {
    /// Build a partition from rows. The columnar shadow (column vectors +
    /// zone maps) is computed here, so it exists from commit time onward.
    pub fn new(id: PartitionId, rows: Vec<Row>) -> Self {
        let columnar = ColumnarPartition::build(&rows).map(Arc::new);
        Partition {
            id,
            rows: Arc::new(rows),
            columnar,
        }
    }

    /// This partition's id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate in-memory footprint in "cells" (rows × columns), used by
    /// the warehouse cost model.
    pub fn cells(&self) -> usize {
        self.rows.iter().map(Row::len).sum()
    }

    /// The columnar shadow (`None` only for ragged test data).
    pub fn columnar(&self) -> Option<&Arc<ColumnarPartition>> {
        self.columnar.as_ref()
    }

    /// Per-column zone maps, when the partition is columnar.
    pub fn zone_maps(&self) -> Option<&[ZoneMap]> {
        self.columnar.as_deref().map(ColumnarPartition::zone_maps)
    }

    /// Slice this partition as a zero-copy [`Batch`] (shared column
    /// `Arc`s, all rows selected). Counts as a data read. Falls back to
    /// shredding the row form when the partition is not columnar.
    pub fn batch(&self) -> Batch {
        match &self.columnar {
            Some(c) => {
                c.data_reads.fetch_add(1, Ordering::Relaxed);
                Batch::new(c.columns.clone(), self.rows.len())
            }
            None => {
                let arity = self.rows.first().map_or(0, Row::len);
                Batch::from_rows(arity, &self.rows)
            }
        }
    }

    /// How many times this partition's column data was handed to scans
    /// (zone-map pruning checks do not count).
    pub fn data_reads(&self) -> u64 {
        self.columnar.as_ref().map_or(0, |c| c.data_reads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{row, CmpOp, ColumnPredicate, PredicateSet, Value};

    #[test]
    fn partition_is_immutable_snapshot() {
        let p = Partition::new(PartitionId(1), vec![row!(1i64), row!(2i64)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.cells(), 2);
        assert_eq!(p.id(), PartitionId(1));
        let p2 = p.clone();
        assert!(std::ptr::eq(p.rows().as_ptr(), p2.rows().as_ptr()));
    }

    #[test]
    fn columnar_shadow_matches_rows() {
        let rows = vec![row!(1i64, "a"), row!(2i64, "b")];
        let p = Partition::new(PartitionId(1), rows.clone());
        let b = p.batch();
        assert_eq!(b.to_rows(), rows);
        // Zone maps were computed at construction.
        let zs = p.zone_maps().unwrap();
        assert_eq!(zs[0].min, Some(Value::Int(1)));
        assert_eq!(zs[0].max, Some(Value::Int(2)));
        assert_eq!(zs[1].min, Some(Value::Str("a".into())));
    }

    #[test]
    fn batches_share_column_storage() {
        let p = Partition::new(PartitionId(1), vec![row!(1i64), row!(2i64)]);
        let b1 = p.batch();
        let b2 = p.batch();
        assert!(Arc::ptr_eq(b1.column(0), b2.column(0)));
    }

    #[test]
    fn zone_map_checks_are_not_data_reads() {
        let p = Partition::new(PartitionId(1), vec![row!(1i64), row!(5i64)]);
        let ps = PredicateSet::new(vec![ColumnPredicate {
            column: 0,
            op: CmpOp::Gt,
            literal: Value::Int(100),
        }]);
        assert!(ps.prunes(p.zone_maps().unwrap()));
        assert_eq!(p.data_reads(), 0);
        p.batch();
        assert_eq!(p.data_reads(), 1);
    }

    #[test]
    fn empty_partition_has_prunable_zone_maps() {
        let p = Partition::new(PartitionId(1), vec![]);
        let b = p.batch();
        assert_eq!(b.len(), 0);
        assert_eq!(b.arity(), 0);
    }
}
