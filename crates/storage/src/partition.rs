//! Immutable micro-partitions.

use std::sync::Arc;

use dt_common::{PartitionId, Row};

/// An immutable run of rows. Once created a partition's contents never
/// change; DML rewrites partitions wholesale (copy-on-write), which is what
/// makes version chains and change scans cheap.
#[derive(Debug, Clone)]
pub struct Partition {
    id: PartitionId,
    rows: Arc<Vec<Row>>,
}

impl Partition {
    /// Build a partition from rows.
    pub fn new(id: PartitionId, rows: Vec<Row>) -> Self {
        Partition {
            id,
            rows: Arc::new(rows),
        }
    }

    /// This partition's id.
    pub fn id(&self) -> PartitionId {
        self.id
    }

    /// The rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the partition holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate in-memory footprint in "cells" (rows × columns), used by
    /// the warehouse cost model.
    pub fn cells(&self) -> usize {
        self.rows.iter().map(Row::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::row;

    #[test]
    fn partition_is_immutable_snapshot() {
        let p = Partition::new(PartitionId(1), vec![row!(1i64), row!(2i64)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.cells(), 2);
        assert_eq!(p.id(), PartitionId(1));
        let p2 = p.clone();
        assert!(std::ptr::eq(p.rows().as_ptr(), p2.rows().as_ptr()));
    }
}
