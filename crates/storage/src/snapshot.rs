//! Pinned table snapshots: lock-free reads over one immutable version.
//!
//! A [`TableSnapshot`] captures everything a reader needs from one
//! [`TableStore`](crate::TableStore) version — the schema, the version
//! metadata, and `Arc` handles to the version's micro-partitions. Capture
//! holds the store's internal lock only long enough to clone the partition
//! handle list (metadata only; partitions are immutable and shared), after
//! which the snapshot can be scanned any number of times with **no lock at
//! all**: writers appending new versions to the store never disturb it.
//!
//! This is the storage half of the MVCC read path (§5.3): queries pin a
//! version per table up front and then execute entirely against pinned
//! snapshots, so a long SELECT never blocks — and is never blocked by —
//! concurrent DML or refreshes.

use std::sync::Arc;

use dt_common::{Row, Schema, Timestamp, VersionId};

use crate::partition::Partition;

/// One immutable version of one table, pinned for lock-free scanning.
/// Cheap to clone (shares the schema and partition `Arc`s).
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    schema: Arc<Schema>,
    version: VersionId,
    commit_ts: Timestamp,
    row_count: usize,
    partitions: Vec<Arc<Partition>>,
}

impl TableSnapshot {
    /// Assemble a snapshot from resolved parts (called by
    /// [`TableStore::snapshot`](crate::TableStore::snapshot)).
    pub(crate) fn new(
        schema: Arc<Schema>,
        version: VersionId,
        commit_ts: Timestamp,
        row_count: usize,
        partitions: Vec<Arc<Partition>>,
    ) -> Self {
        TableSnapshot {
            schema,
            version,
            commit_ts,
            row_count,
            partitions,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The pinned version id.
    pub fn version(&self) -> VersionId {
        self.version
    }

    /// Commit timestamp of the pinned version.
    pub fn commit_ts(&self) -> Timestamp {
        self.commit_ts
    }

    /// Row count at the pinned version (from version metadata; free).
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// True when the pinned version holds no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Number of micro-partitions in the pinned version.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Iterate over the rows of the pinned version, in scan order, without
    /// cloning and without taking any lock.
    pub fn iter_rows(&self) -> impl Iterator<Item = &Row> {
        self.partitions.iter().flat_map(|p| p.rows().iter())
    }

    /// Materialize the rows of the pinned version (lock-free).
    pub fn scan(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.row_count);
        for p in &self.partitions {
            out.extend(p.rows().iter().cloned());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableStore;
    use dt_common::{row, Column, DataType, TxnId};

    fn store() -> TableStore {
        TableStore::with_partition_capacity(
            Schema::new(vec![Column::new("x", DataType::Int)]),
            Timestamp::EPOCH,
            TxnId(0),
            2,
        )
    }

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn snapshot_scans_match_store_scans() {
        let t = store();
        let v = t
            .commit_change(
                vec![row!(1i64), row!(2i64), row!(3i64)],
                vec![],
                ts(1),
                TxnId(1),
            )
            .unwrap();
        let snap = t.snapshot(v).unwrap();
        assert_eq!(snap.version(), v);
        assert_eq!(snap.commit_ts(), ts(1));
        assert_eq!(snap.row_count(), 3);
        assert_eq!(snap.partition_count(), 2);
        assert_eq!(snap.scan(), t.scan(v).unwrap());
        assert_eq!(snap.iter_rows().count(), 3);
    }

    #[test]
    fn snapshot_is_immune_to_later_commits() {
        let t = store();
        let v1 = t
            .commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1))
            .unwrap();
        let snap = t.snapshot(v1).unwrap();
        // Writers keep appending — even overwriting everything.
        t.commit_change(vec![row!(2i64)], vec![], ts(2), TxnId(2))
            .unwrap();
        t.overwrite(vec![row!(9i64)], ts(3), TxnId(3)).unwrap();
        assert_eq!(snap.scan(), vec![row!(1i64)]);
        assert_eq!(snap.row_count(), 1);
        // A fresh latest snapshot sees the new contents.
        assert_eq!(t.snapshot_latest().scan(), vec![row!(9i64)]);
    }

    #[test]
    fn snapshot_of_unknown_version_errors() {
        let t = store();
        assert!(t.snapshot(VersionId(7)).is_err());
    }

    #[test]
    fn empty_initial_version_snapshots_cleanly() {
        let t = store();
        let snap = t.snapshot_latest();
        assert!(snap.is_empty());
        assert_eq!(snap.scan(), Vec::<Row>::new());
    }
}
