//! Pinned table snapshots: lock-free reads over one immutable version.
//!
//! A [`TableSnapshot`] captures everything a reader needs from one
//! [`TableStore`](crate::TableStore) version — the schema, the version
//! metadata, and `Arc` handles to the version's micro-partitions. Capture
//! holds the store's internal lock only long enough to clone the partition
//! handle list (metadata only; partitions are immutable and shared), after
//! which the snapshot can be scanned any number of times with **no lock at
//! all**: writers appending new versions to the store never disturb it.
//!
//! This is the storage half of the MVCC read path (§5.3): queries pin a
//! version per table up front and then execute entirely against pinned
//! snapshots, so a long SELECT never blocks — and is never blocked by —
//! concurrent DML or refreshes.

use std::sync::Arc;

use dt_common::{Batch, PredicateSet, Row, Schema, Timestamp, VersionId};

use crate::partition::Partition;

/// One immutable version of one table, pinned for lock-free scanning.
/// Cheap to clone (shares the schema and partition `Arc`s).
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    schema: Arc<Schema>,
    version: VersionId,
    commit_ts: Timestamp,
    row_count: usize,
    partitions: Vec<Arc<Partition>>,
}

impl TableSnapshot {
    /// Assemble a snapshot from resolved parts (called by
    /// [`TableStore::snapshot`](crate::TableStore::snapshot)).
    pub(crate) fn new(
        schema: Arc<Schema>,
        version: VersionId,
        commit_ts: Timestamp,
        row_count: usize,
        partitions: Vec<Arc<Partition>>,
    ) -> Self {
        TableSnapshot {
            schema,
            version,
            commit_ts,
            row_count,
            partitions,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The pinned version id.
    pub fn version(&self) -> VersionId {
        self.version
    }

    /// Commit timestamp of the pinned version.
    pub fn commit_ts(&self) -> Timestamp {
        self.commit_ts
    }

    /// Row count at the pinned version (from version metadata; free).
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// True when the pinned version holds no rows.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0
    }

    /// Number of micro-partitions in the pinned version.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Iterate over the rows of the pinned version, in scan order, without
    /// cloning and without taking any lock.
    pub fn iter_rows(&self) -> impl Iterator<Item = &Row> {
        self.partitions.iter().flat_map(|p| p.rows().iter())
    }

    /// Materialize the rows of the pinned version (lock-free).
    pub fn scan(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.row_count);
        for p in &self.partitions {
            out.extend(p.rows().iter().cloned());
        }
        out
    }

    /// The pinned partition handles (morsel-parallel scans pull individual
    /// partitions through [`TableSnapshot::partition_batch`]).
    pub fn partitions(&self) -> &[Arc<Partition>] {
        &self.partitions
    }

    /// Scan one partition as a columnar batch, or `None` when `filter`'s
    /// zone-map check proves no row can match — in which case the
    /// partition's column data is never touched (its data-read counter
    /// does not move). Surviving batches have the filter applied as a
    /// selection bitmap.
    pub fn partition_batch(&self, idx: usize, filter: Option<&PredicateSet>) -> Option<Batch> {
        let p = &self.partitions[idx];
        if let (Some(f), Some(zone_maps)) = (filter, p.zone_maps()) {
            if f.prunes(zone_maps) {
                crate::telemetry::record_zone_map_prune();
                return None;
            }
        }
        let mut batch = p.batch();
        if let Some(f) = filter {
            f.apply(&mut batch);
        }
        Some(batch)
    }

    /// Scan the pinned version as columnar batches (one per surviving
    /// partition), skipping partitions whose zone maps prove the filter
    /// can't match. Zero-copy: batches share the partitions' column
    /// vectors. Lock-free, like [`TableSnapshot::scan`].
    pub fn scan_batches(&self, filter: Option<&PredicateSet>) -> Vec<Batch> {
        (0..self.partitions.len())
            .filter_map(|i| self.partition_batch(i, filter))
            .collect()
    }

    /// How many of this snapshot's partitions `filter` prunes outright —
    /// scan planning / bench instrumentation.
    pub fn count_pruned(&self, filter: &PredicateSet) -> usize {
        self.partitions
            .iter()
            .filter(|p| p.zone_maps().is_some_and(|z| filter.prunes(z)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableStore;
    use dt_common::{row, Column, DataType, TxnId};

    fn store() -> TableStore {
        TableStore::with_partition_capacity(
            Schema::new(vec![Column::new("x", DataType::Int)]),
            Timestamp::EPOCH,
            TxnId(0),
            2,
        )
    }

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn snapshot_scans_match_store_scans() {
        let t = store();
        let v = t
            .commit_change(
                vec![row!(1i64), row!(2i64), row!(3i64)],
                vec![],
                ts(1),
                TxnId(1),
            )
            .unwrap();
        let snap = t.snapshot(v).unwrap();
        assert_eq!(snap.version(), v);
        assert_eq!(snap.commit_ts(), ts(1));
        assert_eq!(snap.row_count(), 3);
        assert_eq!(snap.partition_count(), 2);
        assert_eq!(snap.scan(), t.scan(v).unwrap());
        assert_eq!(snap.iter_rows().count(), 3);
    }

    #[test]
    fn snapshot_is_immune_to_later_commits() {
        let t = store();
        let v1 = t
            .commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1))
            .unwrap();
        let snap = t.snapshot(v1).unwrap();
        // Writers keep appending — even overwriting everything.
        t.commit_change(vec![row!(2i64)], vec![], ts(2), TxnId(2))
            .unwrap();
        t.overwrite(vec![row!(9i64)], ts(3), TxnId(3)).unwrap();
        assert_eq!(snap.scan(), vec![row!(1i64)]);
        assert_eq!(snap.row_count(), 1);
        // A fresh latest snapshot sees the new contents.
        assert_eq!(t.snapshot_latest().scan(), vec![row!(9i64)]);
    }

    fn pred(column: usize, op: dt_common::CmpOp, lit: impl Into<dt_common::Value>) -> PredicateSet {
        PredicateSet::new(vec![dt_common::ColumnPredicate {
            column,
            op,
            literal: lit.into(),
        }])
    }

    #[test]
    fn scan_batches_match_row_scans() {
        let t = store();
        let v = t
            .commit_change(
                vec![row!(1i64), row!(2i64), row!(3i64), row!(4i64), row!(5i64)],
                vec![],
                ts(1),
                TxnId(1),
            )
            .unwrap();
        let snap = t.snapshot(v).unwrap();
        let rows: Vec<_> = snap
            .scan_batches(None)
            .iter()
            .flat_map(|b| b.to_rows())
            .collect();
        assert_eq!(rows, snap.scan());
    }

    #[test]
    fn zone_maps_prune_cold_partitions_without_reading_them() {
        // Partition capacity 2 → rows 1..=6 land in partitions
        // [1,2], [3,4], [5,6], each with tight zone maps.
        let t = store();
        let v = t
            .commit_change(
                (1..=6i64).map(|i| row!(i)).collect(),
                vec![],
                ts(1),
                TxnId(1),
            )
            .unwrap();
        let snap = t.snapshot(v).unwrap();
        assert_eq!(snap.partition_count(), 3);
        let f = pred(0, dt_common::CmpOp::Gt, 4i64);
        assert_eq!(snap.count_pruned(&f), 2);
        let batches = snap.scan_batches(Some(&f));
        let rows: Vec<_> = batches.iter().flat_map(|b| b.to_rows()).collect();
        assert_eq!(rows, vec![row!(5i64), row!(6i64)]);
        // The proof: pruned partitions' data was never touched, only the
        // surviving partition's was.
        assert_eq!(snap.partitions()[0].data_reads(), 0);
        assert_eq!(snap.partitions()[1].data_reads(), 0);
        assert_eq!(snap.partitions()[2].data_reads(), 1);
    }

    #[test]
    fn zone_maps_handle_nulls() {
        use dt_common::Value;
        let t = store();
        let v = t
            .commit_change(
                vec![
                    Row::new(vec![Value::Null]),
                    Row::new(vec![Value::Null]),
                    row!(7i64),
                    Row::new(vec![Value::Null]),
                ],
                vec![],
                ts(1),
                TxnId(1),
            )
            .unwrap();
        let snap = t.snapshot(v).unwrap();
        // Partition 0 is all-NULL: its zone map has no bounds, so any
        // comparison prunes it; NULLs never satisfy a comparison.
        let zs = snap.partitions()[0].zone_maps().unwrap();
        assert_eq!(zs[0].min, None);
        assert_eq!(zs[0].null_count, 2);
        let f = pred(0, dt_common::CmpOp::LtEq, 100i64);
        let rows: Vec<_> = snap
            .scan_batches(Some(&f))
            .iter()
            .flat_map(|b| b.to_rows())
            .collect();
        assert_eq!(rows, vec![row!(7i64)]);
        assert_eq!(snap.partitions()[0].data_reads(), 0);
    }

    #[test]
    fn zone_maps_handle_mixed_type_columns() {
        use dt_common::Value;
        // The schema says INT but storage is dynamically typed; a column
        // mixing ints and strings must neither wrongly prune nor wrongly
        // match (sql_cmp orders cross-rank types by rank: Int < Str).
        let t = store();
        let v = t
            .commit_change(
                vec![row!(1i64), row!("zz"), row!(5i64), row!("aa")],
                vec![],
                ts(1),
                TxnId(1),
            )
            .unwrap();
        let snap = t.snapshot(v).unwrap();
        let f = pred(0, dt_common::CmpOp::Eq, "aa");
        let rows: Vec<_> = snap
            .scan_batches(Some(&f))
            .iter()
            .flat_map(|b| b.to_rows())
            .collect();
        assert_eq!(rows, vec![row!("aa")]);
        // Strings sort above every int, so an int predicate that clears
        // the int range still can't match — but one inside it can.
        let f = pred(0, dt_common::CmpOp::Eq, 5i64);
        let rows: Vec<_> = snap
            .scan_batches(Some(&f))
            .iter()
            .flat_map(|b| b.to_rows())
            .collect();
        assert_eq!(rows, vec![row!(5i64)]);
        assert_eq!(
            snap.scan_batches(Some(&pred(0, dt_common::CmpOp::Eq, Value::Null)))
                .iter()
                .map(|b| b.live_count())
                .sum::<usize>(),
            0
        );
    }

    #[test]
    fn empty_table_scans_no_batches() {
        let t = store();
        let snap = t.snapshot_latest();
        assert!(snap.scan_batches(None).is_empty());
        assert_eq!(snap.count_pruned(&pred(0, dt_common::CmpOp::Eq, 1i64)), 0);
    }

    #[test]
    fn snapshot_of_unknown_version_errors() {
        let t = store();
        assert!(t.snapshot(VersionId(7)).is_err());
    }

    #[test]
    fn empty_initial_version_snapshots_cleanly() {
        let t = store();
        let snap = t.snapshot_latest();
        assert!(snap.is_empty());
        assert_eq!(snap.scan(), Vec::<Row>::new());
    }
}
