//! The versioned table store.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dt_common::{
    Column, DtError, DtResult, PartitionId, Row, Schema, Timestamp, TxnId, VersionId,
};

use crate::change::ChangeSet;
use crate::partition::Partition;
use crate::snapshot::TableSnapshot;
use crate::version::TableVersion;

/// Default number of rows per micro-partition.
pub const DEFAULT_PARTITION_CAPACITY: usize = 4096;

struct Inner {
    partitions: HashMap<PartitionId, Arc<Partition>>,
    versions: Vec<TableVersion>,
}

/// The output of the (lock-free) row work of a change: freshly minted
/// partitions plus the metadata of the version they will form.
struct ChangeBuild {
    new_parts: Vec<Arc<Partition>>,
    partitions: Vec<PartitionId>,
    added: Vec<PartitionId>,
    removed: Vec<PartitionId>,
    row_count: usize,
}

/// A change whose row work has been done against a pinned base version but
/// which has not been installed yet — phase one of the optimistic
/// transaction commit. Built by [`TableStore::prepare_change_at`] with no
/// lock held; installed (O(metadata)) by [`TableStore::install_prepared`],
/// which validates the base version is still the latest.
pub struct PreparedChange {
    base: VersionId,
    build: ChangeBuild,
}

impl PreparedChange {
    /// The version this change was prepared against.
    pub fn base(&self) -> VersionId {
        self.base
    }

    /// Rows the table will hold once the change is installed.
    pub fn row_count(&self) -> usize {
        self.build.row_count
    }

    /// Snapshot the physical contents of this change for the write-ahead
    /// log. Called by the group-commit leader just before
    /// [`CommitGuard::install_validated`] consumes the change; replaying
    /// the record with [`TableStore::replay_install`] reconstructs the
    /// identical version (same partition ids, same deltas).
    pub fn install_record(&self) -> crate::durable::VersionInstallRecord {
        crate::durable::VersionInstallRecord {
            new_parts: self
                .build
                .new_parts
                .iter()
                .map(|p| (p.id(), p.rows().to_vec()))
                .collect(),
            partitions: self.build.partitions.clone(),
            added: self.build.added.clone(),
            removed: self.build.removed.clone(),
            row_count: self.build.row_count,
        }
    }
}

impl std::fmt::Debug for PreparedChange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedChange")
            .field("base", &self.base)
            .field("row_count", &self.build.row_count)
            .finish()
    }
}

/// Exclusive commit access to one [`TableStore`]: holds the store's writer
/// commit lock so the latest version cannot move between **validation**
/// ([`CommitGuard::validate_prepared`]) and **install**
/// ([`CommitGuard::install_validated`]). This split is what makes
/// multi-table commits all-or-nothing: the committer guards every touched
/// table, validates every prepared change, mints a commit timestamp past
/// every table's latest version, and only then installs — at which point
/// no install can fail, so a failure can never strand a half-applied
/// commit.
pub struct CommitGuard<'a> {
    store: &'a TableStore,
    _lock: parking_lot::MutexGuard<'a, ()>,
}

impl CommitGuard<'_> {
    /// The latest version id — stable while this guard is held.
    pub fn latest_version(&self) -> VersionId {
        self.store.latest_version()
    }

    /// The latest version's commit timestamp — stable while this guard is
    /// held. Committers fold this into their HLC so the minted commit
    /// timestamp can never regress behind the chain it extends.
    pub fn latest_commit_ts(&self) -> Timestamp {
        self.store
            .commit_ts_of(self.latest_version())
            .expect("latest version always resolvable")
    }

    /// Validate that `prep` still applies: its base must be the latest
    /// version. Because the guard pins the latest version, a successful
    /// validation cannot be invalidated before
    /// [`CommitGuard::install_validated`] runs.
    pub fn validate_prepared(&self, prep: &PreparedChange) -> DtResult<()> {
        let latest = self.latest_version();
        if latest != prep.base {
            return Err(DtError::Conflict(format!(
                "write-write conflict: prepared against version {} but the \
                 table is now at {latest} (first committer wins)",
                prep.base
            )));
        }
        Ok(())
    }

    /// Install a change that was validated under this guard, at
    /// `commit_ts`. Infallible by contract: the caller must have called
    /// [`CommitGuard::validate_prepared`] on this guard and minted
    /// `commit_ts` at or after [`CommitGuard::latest_commit_ts`] — both
    /// stay true while the guard is held, so the install cannot fail.
    ///
    /// # Panics
    ///
    /// Panics if the contract is violated (an unvalidated change or a
    /// regressing timestamp) — that is an internal bug in the caller, not
    /// a runtime condition.
    pub fn install_validated(
        &self,
        prep: PreparedChange,
        commit_ts: Timestamp,
        txn: TxnId,
    ) -> VersionId {
        debug_assert_eq!(
            self.latest_version(),
            prep.base,
            "install_validated called without validate_prepared"
        );
        let b = prep.build;
        self.store
            .install_version(
                b.new_parts,
                commit_ts,
                txn,
                b.partitions,
                b.added,
                b.removed,
                false,
                b.row_count,
            )
            .expect("validated prepared change cannot fail to install")
    }
}

/// One table's storage: an append-only chain of immutable versions over a
/// pool of immutable micro-partitions.
///
/// Thread-safe, and MVCC-friendly: writers serialize among themselves on
/// `commit_lock` and do all row work (copy-on-write rewrites, partition
/// minting) *outside* the `inner` lock, taking it only for the brief
/// metadata install of the new version. Readers — scans, snapshots,
/// change scans — therefore never wait behind the row-processing part of
/// a commit, which is what keeps the engine's pinned [`TableSnapshot`]
/// readers latency-flat while refreshes land (§5.3).
pub struct TableStore {
    schema: Arc<Schema>,
    partition_capacity: usize,
    /// Partition ids are minted lock-free.
    next_partition: AtomicU64,
    /// Serializes writers against each other (the engine additionally
    /// serializes refreshes per DT with transaction locks, §5.3).
    commit_lock: Mutex<()>,
    inner: RwLock<Inner>,
}

impl TableStore {
    /// Create an empty table. An initial empty version is committed at
    /// `created_ts` so that time-travel reads before any DML see an empty
    /// table rather than an error.
    pub fn new(schema: Schema, created_ts: Timestamp, created_by: TxnId) -> Self {
        Self::with_partition_capacity(schema, created_ts, created_by, DEFAULT_PARTITION_CAPACITY)
    }

    /// As [`TableStore::new`] with an explicit micro-partition capacity.
    pub fn with_partition_capacity(
        schema: Schema,
        created_ts: Timestamp,
        created_by: TxnId,
        partition_capacity: usize,
    ) -> Self {
        assert!(partition_capacity > 0, "partition capacity must be positive");
        let v0 = TableVersion {
            id: VersionId(0),
            commit_ts: created_ts,
            created_by,
            partitions: vec![],
            added: vec![],
            removed: vec![],
            data_equivalent: false,
            row_count: 0,
        };
        TableStore {
            schema: Arc::new(schema),
            partition_capacity,
            next_partition: AtomicU64::new(0),
            commit_lock: Mutex::new(()),
            inner: RwLock::new(Inner {
                partitions: HashMap::new(),
                versions: vec![v0],
            }),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The schema's columns (convenience).
    pub fn columns(&self) -> Vec<Column> {
        self.schema.columns().to_vec()
    }

    /// The latest version id.
    pub fn latest_version(&self) -> VersionId {
        let inner = self.inner.read();
        inner.versions.last().expect("version chain never empty").id
    }

    /// The commit timestamp of a version.
    pub fn commit_ts_of(&self, v: VersionId) -> DtResult<Timestamp> {
        let inner = self.inner.read();
        inner
            .versions
            .get(v.raw() as usize)
            .map(|tv| tv.commit_ts)
            .ok_or_else(|| DtError::Storage(format!("unknown version {v}")))
    }

    /// Row count at a version.
    pub fn row_count_at(&self, v: VersionId) -> DtResult<usize> {
        let inner = self.inner.read();
        inner
            .versions
            .get(v.raw() as usize)
            .map(|tv| tv.row_count)
            .ok_or_else(|| DtError::Storage(format!("unknown version {v}")))
    }

    /// Resolve the version visible at time `ts`: the version with the
    /// largest commit timestamp ≤ `ts` (the snapshot-read rule of §5.3).
    pub fn version_at(&self, ts: Timestamp) -> Option<VersionId> {
        let inner = self.inner.read();
        // Versions are in commit-ts order; binary search for the rightmost
        // version with commit_ts <= ts.
        let vs = &inner.versions;
        let mut lo = 0usize;
        let mut hi = vs.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if vs[mid].commit_ts <= ts {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            None
        } else {
            Some(vs[lo - 1].id)
        }
    }

    /// Pin version `v` as a [`TableSnapshot`]: resolves the version's
    /// partition handles under a brief read lock, after which the snapshot
    /// scans with no lock at all. Writers appending new versions never
    /// disturb an outstanding snapshot.
    pub fn snapshot(&self, v: VersionId) -> DtResult<TableSnapshot> {
        let inner = self.inner.read();
        let tv = inner
            .versions
            .get(v.raw() as usize)
            .ok_or_else(|| DtError::Storage(format!("unknown version {v}")))?;
        let mut partitions = Vec::with_capacity(tv.partitions.len());
        for pid in &tv.partitions {
            partitions.push(Arc::clone(inner.partitions.get(pid).ok_or_else(
                || DtError::Storage(format!("missing partition {pid}")),
            )?));
        }
        Ok(TableSnapshot::new(
            Arc::clone(&self.schema),
            tv.id,
            tv.commit_ts,
            tv.row_count,
            partitions,
        ))
    }

    /// Pin the latest version as a [`TableSnapshot`].
    pub fn snapshot_latest(&self) -> TableSnapshot {
        self.snapshot(self.latest_version())
            .expect("latest version always resolvable")
    }

    /// Full scan of the table at a version.
    pub fn scan(&self, v: VersionId) -> DtResult<Vec<Row>> {
        let inner = self.inner.read();
        let tv = inner
            .versions
            .get(v.raw() as usize)
            .ok_or_else(|| DtError::Storage(format!("unknown version {v}")))?;
        let mut out = Vec::with_capacity(tv.row_count);
        for pid in &tv.partitions {
            let p = inner
                .partitions
                .get(pid)
                .ok_or_else(|| DtError::Storage(format!("missing partition {pid}")))?;
            out.extend(p.rows().iter().cloned());
        }
        Ok(out)
    }

    /// Slice rows into capacity-sized immutable partitions with freshly
    /// minted ids. Lock-free: partition ids come off an atomic counter, so
    /// the (potentially large) row work never holds a lock readers need.
    fn mint_partitions(&self, rows: Vec<Row>) -> Vec<Arc<Partition>> {
        let capacity = self.partition_capacity;
        let mut out = Vec::new();
        let mut buf = Vec::with_capacity(capacity.min(rows.len()));
        for r in rows {
            buf.push(r);
            if buf.len() == capacity {
                let id = PartitionId(self.next_partition.fetch_add(1, Ordering::Relaxed));
                out.push(Arc::new(Partition::new(id, std::mem::take(&mut buf))));
            }
        }
        if !buf.is_empty() {
            let id = PartitionId(self.next_partition.fetch_add(1, Ordering::Relaxed));
            out.push(Arc::new(Partition::new(id, buf)));
        }
        out
    }

    /// Pin the latest version's metadata and partition handles under a
    /// brief read lock (writers call this while holding `commit_lock`, so
    /// the result stays the latest for the duration of their commit).
    fn pin_latest(&self) -> (TableVersion, Vec<Arc<Partition>>) {
        let inner = self.inner.read();
        let prev = inner.versions.last().expect("chain never empty").clone();
        let parts = prev
            .partitions
            .iter()
            .map(|pid| Arc::clone(&inner.partitions[pid]))
            .collect();
        (prev, parts)
    }

    /// Install a fully built version — the only write-path step that takes
    /// the inner write lock, and it is O(metadata): insert the new
    /// partition handles and append the version record.
    #[allow(clippy::too_many_arguments)]
    fn install_version(
        &self,
        new_parts: Vec<Arc<Partition>>,
        commit_ts: Timestamp,
        created_by: TxnId,
        partitions: Vec<PartitionId>,
        added: Vec<PartitionId>,
        removed: Vec<PartitionId>,
        data_equivalent: bool,
        row_count: usize,
    ) -> DtResult<VersionId> {
        let mut inner = self.inner.write();
        let prev = inner.versions.last().expect("chain never empty");
        if commit_ts < prev.commit_ts {
            return Err(DtError::Storage(format!(
                "commit timestamp {commit_ts} precedes latest version at {}",
                prev.commit_ts
            )));
        }
        for p in new_parts {
            inner.partitions.insert(p.id(), p);
        }
        let id = VersionId(inner.versions.len() as u64);
        inner.versions.push(TableVersion {
            id,
            commit_ts,
            created_by,
            partitions,
            added,
            removed,
            data_equivalent,
            row_count,
        });
        Ok(id)
    }

    /// Validate row arity against the schema.
    fn check_rows(&self, rows: &[Row]) -> DtResult<()> {
        for r in rows {
            if r.len() != self.schema.len() {
                return Err(DtError::Storage(format!(
                    "row arity {} does not match schema arity {}",
                    r.len(),
                    self.schema.len()
                )));
            }
        }
        Ok(())
    }

    /// The row work of a change commit: apply `deletes` to `prev_parts`
    /// copy-on-write and mint partitions for `inserts`. Takes **no lock**
    /// at all — callers either hold `commit_lock` (the classic
    /// [`TableStore::commit_change`]) or run against a pinned base version
    /// whose stability is validated at install time (the optimistic
    /// transaction path, [`TableStore::prepare_change_at`]).
    fn build_change(
        &self,
        prev_parts: &[Arc<Partition>],
        inserts: Vec<Row>,
        deletes: &[Row],
    ) -> DtResult<ChangeBuild> {
        // Multiset of rows still to delete.
        let mut to_delete: HashMap<Row, usize> = HashMap::new();
        for r in deletes {
            *to_delete.entry(r.clone()).or_insert(0) += 1;
        }

        let mut kept: Vec<PartitionId> = Vec::with_capacity(prev_parts.len() + 1);
        let mut added: Vec<PartitionId> = Vec::new();
        let mut removed: Vec<PartitionId> = Vec::new();
        let mut new_parts: Vec<Arc<Partition>> = Vec::new();
        let mut row_count = 0usize;
        let mut missing = deletes.len();

        for part in prev_parts {
            let touches = !to_delete.is_empty()
                && part.rows().iter().any(|r| {
                    to_delete
                        .get(r)
                        .map(|n| *n > 0)
                        .unwrap_or(false)
                });
            if !touches {
                kept.push(part.id());
                row_count += part.len();
                continue;
            }
            // Copy-on-write rewrite of this partition.
            let mut survivors = Vec::with_capacity(part.len());
            for r in part.rows() {
                match to_delete.get_mut(r) {
                    Some(n) if *n > 0 => {
                        *n -= 1;
                        missing -= 1;
                    }
                    _ => survivors.push(r.clone()),
                }
            }
            removed.push(part.id());
            if !survivors.is_empty() {
                for p in self.mint_partitions(survivors) {
                    added.push(p.id());
                    kept.push(p.id());
                    row_count += p.len();
                    new_parts.push(p);
                }
            }
        }

        if missing > 0 {
            return Err(DtError::Storage(format!(
                "{missing} row(s) to delete were not found"
            )));
        }

        if !inserts.is_empty() {
            for p in self.mint_partitions(inserts) {
                added.push(p.id());
                kept.push(p.id());
                row_count += p.len();
                new_parts.push(p);
            }
        }

        Ok(ChangeBuild {
            new_parts,
            partitions: kept,
            added,
            removed,
            row_count,
        })
    }

    /// Apply a DML change: insert `inserts` and delete one occurrence of
    /// each row in `deletes` (multiset delete by value). Partitions touched
    /// by deletes are rewritten copy-on-write; untouched partitions are
    /// carried over. Returns the new version.
    pub fn commit_change(
        &self,
        inserts: Vec<Row>,
        deletes: Vec<Row>,
        commit_ts: Timestamp,
        txn: TxnId,
    ) -> DtResult<VersionId> {
        self.check_rows(&inserts)?;
        self.check_rows(&deletes)?;
        let _commit = self.commit_lock.lock();
        let (_prev, prev_parts) = self.pin_latest();

        // All row work happens here, outside the inner lock: readers keep
        // scanning (and pinning snapshots of) existing versions meanwhile.
        let b = self.build_change(&prev_parts, inserts, &deletes)?;
        self.install_version(
            b.new_parts,
            commit_ts,
            txn,
            b.partitions,
            b.added,
            b.removed,
            false,
            b.row_count,
        )
    }

    /// Phase one of an optimistic (transactional) commit: do **all** the
    /// row work of a change against the pinned `base` version — COW delete
    /// rewrites, partition minting — holding no lock whatsoever. The
    /// returned [`PreparedChange`] is installed later with
    /// [`TableStore::install_prepared`], which re-validates that `base` is
    /// still the latest version (first committer wins). Between the two
    /// phases, readers and writers of this table proceed undisturbed.
    pub fn prepare_change_at(
        &self,
        base: VersionId,
        inserts: Vec<Row>,
        deletes: Vec<Row>,
    ) -> DtResult<PreparedChange> {
        self.check_rows(&inserts)?;
        self.check_rows(&deletes)?;
        let base_parts = {
            let inner = self.inner.read();
            let tv = inner
                .versions
                .get(base.raw() as usize)
                .ok_or_else(|| DtError::Storage(format!("unknown version {base}")))?;
            let mut parts = Vec::with_capacity(tv.partitions.len());
            for pid in &tv.partitions {
                parts.push(Arc::clone(inner.partitions.get(pid).ok_or_else(
                    || DtError::Storage(format!("missing partition {pid}")),
                )?));
            }
            parts
        };
        let build = self.build_change(&base_parts, inserts, &deletes)?;
        Ok(PreparedChange { base, build })
    }

    /// Phase one of an optimistic full replacement: mint partitions for a
    /// complete new contents against the pinned `base` version with no lock
    /// held — the staged counterpart of [`TableStore::overwrite`], used by
    /// FULL/REINITIALIZE refreshes that install through the group-commit
    /// queue. Installed later under a [`CommitGuard`] like any other
    /// [`PreparedChange`]; if the table's latest version moved past `base`
    /// in the meantime, validation fails and the refresh aborts.
    pub fn prepare_overwrite_at(&self, base: VersionId, rows: Vec<Row>) -> DtResult<PreparedChange> {
        self.check_rows(&rows)?;
        let removed = {
            let inner = self.inner.read();
            inner
                .versions
                .get(base.raw() as usize)
                .ok_or_else(|| DtError::Storage(format!("unknown version {base}")))?
                .partitions
                .clone()
        };
        let row_count = rows.len();
        let new_parts = self.mint_partitions(rows);
        let added: Vec<PartitionId> = new_parts.iter().map(|p| p.id()).collect();
        let partitions = added.clone();
        Ok(PreparedChange {
            base,
            build: ChangeBuild {
                new_parts,
                partitions,
                added,
                removed,
                row_count,
            },
        })
    }

    /// Phase two of an optimistic commit: install an already-built change
    /// at `commit_ts`. O(metadata) — no row is touched. Fails without
    /// installing anything when the table's latest version moved past the
    /// prepared base (a concurrent commit landed first); the caller treats
    /// that as a write–write conflict and aborts.
    ///
    /// Single-table convenience over the staged [`TableStore::commit_guard`]
    /// path: multi-table committers hold a guard per table so that *every*
    /// table validates before *any* table installs.
    pub fn install_prepared(
        &self,
        prep: PreparedChange,
        commit_ts: Timestamp,
        txn: TxnId,
    ) -> DtResult<VersionId> {
        let guard = self.commit_guard();
        guard.validate_prepared(&prep)?;
        if commit_ts < guard.latest_commit_ts() {
            return Err(DtError::Storage(format!(
                "commit timestamp {commit_ts} precedes latest version at {}",
                guard.latest_commit_ts()
            )));
        }
        Ok(guard.install_validated(prep, commit_ts, txn))
    }

    /// Acquire this table's writer commit lock as a [`CommitGuard`]. While
    /// the guard is held, no writer — not even one bypassing the engine and
    /// driving the store directly — can move the table's latest version, so
    /// a validation performed through the guard stays true until the guard
    /// installs (or is dropped). Multi-table commits acquire their guards
    /// in ascending entity order, validate every table, and only then
    /// install: all-or-nothing by construction.
    pub fn commit_guard(&self) -> CommitGuard<'_> {
        CommitGuard {
            _lock: self.commit_lock.lock(),
            store: self,
        }
    }

    /// Replace the entire contents (`INSERT OVERWRITE`, the FULL refresh
    /// action of §3.3.2).
    pub fn overwrite(&self, rows: Vec<Row>, commit_ts: Timestamp, txn: TxnId) -> DtResult<VersionId> {
        self.check_rows(&rows)?;
        let _commit = self.commit_lock.lock();
        let (prev, _) = self.pin_latest();
        let removed = prev.partitions.clone();
        let row_count = rows.len();
        let new_parts = self.mint_partitions(rows);
        let added: Vec<PartitionId> = new_parts.iter().map(|p| p.id()).collect();
        let partitions = added.clone();
        self.install_version(new_parts, commit_ts, txn, partitions, added, removed, false, row_count)
    }

    /// Background maintenance: rewrite all partitions into optimally sized
    /// ones without changing logical contents. Produces a *data-equivalent*
    /// version that change scans skip (§5.5.2).
    pub fn recluster(&self, commit_ts: Timestamp, txn: TxnId) -> DtResult<VersionId> {
        let _commit = self.commit_lock.lock();
        let (prev, prev_parts) = self.pin_latest();
        let mut all_rows = Vec::with_capacity(prev.row_count);
        for part in &prev_parts {
            all_rows.extend(part.rows().iter().cloned());
        }
        let removed = prev.partitions.clone();
        let row_count = all_rows.len();
        let new_parts = self.mint_partitions(all_rows);
        let added: Vec<PartitionId> = new_parts.iter().map(|p| p.id()).collect();
        let partitions = added.clone();
        self.install_version(new_parts, commit_ts, txn, partitions, added, removed, true, row_count)
    }

    /// Compute the changes between two versions (exclusive `from`,
    /// inclusive `to`). Data-equivalent versions contribute nothing. The
    /// result is consolidated: rows copied between partitions by
    /// copy-on-write rewrites cancel out, so only logical changes remain.
    pub fn changes_between(&self, from: VersionId, to: VersionId) -> DtResult<ChangeSet> {
        if from == to {
            return Ok(ChangeSet::empty());
        }
        if from > to {
            return Err(DtError::Storage(format!(
                "change interval runs backwards: {from} > {to}"
            )));
        }
        let inner = self.inner.read();
        if to.raw() as usize >= inner.versions.len() {
            return Err(DtError::Storage(format!("unknown version {to}")));
        }
        // Net added/removed partition ids over the interval. A partition
        // added then removed inside the interval cancels.
        let mut net: HashMap<PartitionId, i32> = HashMap::new();
        let mut all_data_equivalent = true;
        for v in inner
            .versions
            .iter()
            .skip(from.raw() as usize + 1)
            .take((to.raw() - from.raw()) as usize)
        {
            if !v.data_equivalent {
                all_data_equivalent = false;
            }
            for pid in &v.added {
                *net.entry(*pid).or_insert(0) += 1;
            }
            for pid in &v.removed {
                *net.entry(*pid).or_insert(0) -= 1;
            }
        }
        // Fast path: an interval consisting solely of data-equivalent
        // operations is logically empty — skip reading any partitions.
        if all_data_equivalent {
            return Ok(ChangeSet::empty());
        }
        let mut cs = ChangeSet::empty();
        let mut ids: Vec<(PartitionId, i32)> = net.into_iter().filter(|(_, w)| *w != 0).collect();
        ids.sort_by_key(|(pid, _)| *pid);
        for (pid, w) in ids {
            let part = inner
                .partitions
                .get(&pid)
                .ok_or_else(|| DtError::Storage(format!("missing partition {pid}")))?;
            if w > 0 {
                for r in part.rows() {
                    cs.push_insert(r.clone());
                }
            } else {
                for r in part.rows() {
                    cs.push_delete(r.clone());
                }
            }
        }
        Ok(cs.consolidate())
    }

    /// True when the interval (`from`, `to`] contains no logical change —
    /// the test that drives NO_DATA refreshes (§3.3.2). Cheap: inspects
    /// version metadata only, never row data, unless a non-data-equivalent
    /// version is present in the interval.
    pub fn unchanged_between(&self, from: VersionId, to: VersionId) -> DtResult<bool> {
        if from == to {
            return Ok(true);
        }
        let inner = self.inner.read();
        if to.raw() as usize >= inner.versions.len() || from > to {
            return Err(DtError::Storage(format!(
                "bad version interval ({from}, {to}]"
            )));
        }
        let all_trivial = inner
            .versions
            .iter()
            .skip(from.raw() as usize + 1)
            .take((to.raw() - from.raw()) as usize)
            .all(|v| v.data_equivalent || v.is_empty_delta());
        if all_trivial {
            return Ok(true);
        }
        drop(inner);
        // Fall back to the precise check (a change could still net to zero).
        Ok(self.changes_between(from, to)?.is_empty())
    }

    /// Number of versions in the chain (for telemetry / time travel tests).
    pub fn version_count(&self) -> usize {
        self.inner.read().versions.len()
    }

    /// Zero-copy clone (§3.4): a new store sharing every micro-partition
    /// with this one (partitions are immutable and `Arc`-shared, so only
    /// metadata is copied — Snowflake's zero-copy-cloning).
    pub fn fork(&self) -> TableStore {
        // Hold the commit lock so the fork can't interleave with a
        // writer's pin/install window.
        let _commit = self.commit_lock.lock();
        let inner = self.inner.read();
        TableStore {
            schema: Arc::clone(&self.schema),
            partition_capacity: self.partition_capacity,
            next_partition: AtomicU64::new(self.next_partition.load(Ordering::Relaxed)),
            commit_lock: Mutex::new(()),
            inner: RwLock::new(Inner {
                partitions: inner.partitions.clone(),
                versions: inner.versions.clone(),
            }),
        }
    }

    /// Number of live partitions at the latest version.
    pub fn partition_count(&self) -> usize {
        let inner = self.inner.read();
        inner.versions.last().expect("chain never empty").partitions.len()
    }

    /// Append the version described by a WAL install record, exactly as
    /// originally installed: the record's partitions are inserted under
    /// their original ids and the version metadata is appended verbatim.
    /// The partition id counter is bumped past every replayed id so
    /// post-recovery commits cannot collide with recovered partitions.
    ///
    /// Recovery-only: ordering and idempotence are the caller's job (the
    /// engine replays records in WAL order and skips already-checkpointed
    /// timestamps), though a regressing `commit_ts` is still rejected.
    pub fn replay_install(
        &self,
        rec: &crate::durable::VersionInstallRecord,
        commit_ts: Timestamp,
        txn: TxnId,
    ) -> DtResult<VersionId> {
        let mut max_id = 0u64;
        let new_parts: Vec<Arc<Partition>> = rec
            .new_parts
            .iter()
            .map(|(id, rows)| {
                max_id = max_id.max(id.raw() + 1);
                Arc::new(Partition::new(*id, rows.clone()))
            })
            .collect();
        self.next_partition.fetch_max(max_id, Ordering::Relaxed);
        self.install_version(
            new_parts,
            commit_ts,
            txn,
            rec.partitions.clone(),
            rec.added.clone(),
            rec.removed.clone(),
            false,
            rec.row_count,
        )
    }

    /// Dump the store's complete physical state — schema, partition pool,
    /// full version chain — for a checkpoint. Partitions are sorted by id
    /// so the image is deterministic.
    pub fn checkpoint_dump(&self) -> crate::durable::StoreCheckpoint {
        let inner = self.inner.read();
        let mut partitions: Vec<(PartitionId, Vec<Row>)> = inner
            .partitions
            .values()
            .map(|p| (p.id(), p.rows().to_vec()))
            .collect();
        partitions.sort_by_key(|(id, _)| *id);
        crate::durable::StoreCheckpoint {
            schema: (*self.schema).clone(),
            partition_capacity: self.partition_capacity,
            next_partition: self.next_partition.load(Ordering::Relaxed),
            partitions,
            versions: inner.versions.clone(),
        }
    }

    /// Rebuild a store from a checkpoint image (the inverse of
    /// [`TableStore::checkpoint_dump`]).
    pub fn from_checkpoint(ck: crate::durable::StoreCheckpoint) -> DtResult<TableStore> {
        if ck.versions.is_empty() {
            return Err(DtError::Corruption(
                "store checkpoint has an empty version chain".into(),
            ));
        }
        if ck.partition_capacity == 0 {
            return Err(DtError::Corruption(
                "store checkpoint has zero partition capacity".into(),
            ));
        }
        let mut partitions = HashMap::with_capacity(ck.partitions.len());
        for (id, rows) in ck.partitions {
            partitions.insert(id, Arc::new(Partition::new(id, rows)));
        }
        // Every partition any version references must exist in the pool.
        for v in &ck.versions {
            for pid in &v.partitions {
                if !partitions.contains_key(pid) {
                    return Err(DtError::Corruption(format!(
                        "store checkpoint: version {} references missing partition {pid}",
                        v.id
                    )));
                }
            }
        }
        Ok(TableStore {
            schema: Arc::new(ck.schema),
            partition_capacity: ck.partition_capacity,
            next_partition: AtomicU64::new(ck.next_partition),
            commit_lock: Mutex::new(()),
            inner: RwLock::new(Inner {
                partitions,
                versions: ck.versions,
            }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{row, DataType};

    fn int_table(cap: usize) -> TableStore {
        TableStore::with_partition_capacity(
            Schema::new(vec![Column::new("x", DataType::Int)]),
            Timestamp::EPOCH,
            TxnId(0),
            cap,
        )
    }

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn insert_scan_roundtrip() {
        let t = int_table(2);
        let v = t
            .commit_change(vec![row!(1i64), row!(2i64), row!(3i64)], vec![], ts(1), TxnId(1))
            .unwrap();
        let mut rows = t.scan(v).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row!(1i64), row!(2i64), row!(3i64)]);
        // Capacity 2 => two partitions for three rows.
        assert_eq!(t.partition_count(), 2);
    }

    #[test]
    fn delete_rewrites_copy_on_write() {
        let t = int_table(10);
        t.commit_change(vec![row!(1i64), row!(2i64), row!(3i64)], vec![], ts(1), TxnId(1))
            .unwrap();
        let v2 = t
            .commit_change(vec![], vec![row!(2i64)], ts(2), TxnId(2))
            .unwrap();
        let mut rows = t.scan(v2).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row!(1i64), row!(3i64)]);
    }

    #[test]
    fn delete_missing_row_errors() {
        let t = int_table(10);
        t.commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1)).unwrap();
        let err = t
            .commit_change(vec![], vec![row!(99i64)], ts(2), TxnId(2))
            .unwrap_err();
        assert!(matches!(err, DtError::Storage(_)));
    }

    #[test]
    fn time_travel_resolves_snapshot_rule() {
        let t = int_table(10);
        let v1 = t.commit_change(vec![row!(1i64)], vec![], ts(10), TxnId(1)).unwrap();
        let v2 = t.commit_change(vec![row!(2i64)], vec![], ts(20), TxnId(2)).unwrap();
        assert_eq!(t.version_at(ts(5)), Some(VersionId(0)));
        assert_eq!(t.version_at(ts(10)), Some(v1));
        assert_eq!(t.version_at(ts(15)), Some(v1));
        assert_eq!(t.version_at(ts(99)), Some(v2));
    }

    #[test]
    fn change_scan_between_versions() {
        let t = int_table(10);
        let v1 = t
            .commit_change(vec![row!(1i64), row!(2i64)], vec![], ts(1), TxnId(1))
            .unwrap();
        let v2 = t
            .commit_change(vec![row!(3i64)], vec![row!(1i64)], ts(2), TxnId(2))
            .unwrap();
        let cs = t.changes_between(v1, v2).unwrap();
        assert_eq!(cs.inserts(), &[row!(3i64)]);
        assert_eq!(cs.deletes(), &[row!(1i64)]);
    }

    #[test]
    fn change_scan_cancels_copy_on_write_amplification() {
        // Deleting one row of a 3-row partition rewrites all three rows;
        // consolidation must hide the two copied survivors.
        let t = int_table(10);
        let v1 = t
            .commit_change(vec![row!(1i64), row!(2i64), row!(3i64)], vec![], ts(1), TxnId(1))
            .unwrap();
        let v2 = t
            .commit_change(vec![], vec![row!(2i64)], ts(2), TxnId(2))
            .unwrap();
        let cs = t.changes_between(v1, v2).unwrap();
        assert!(cs.inserts().is_empty());
        assert_eq!(cs.deletes(), &[row!(2i64)]);
    }

    #[test]
    fn recluster_is_invisible_to_change_scans() {
        let t = int_table(2);
        let v1 = t
            .commit_change(
                vec![row!(1i64), row!(2i64), row!(3i64), row!(4i64), row!(5i64)],
                vec![],
                ts(1),
                TxnId(1),
            )
            .unwrap();
        let v2 = t.recluster(ts(2), TxnId(2)).unwrap();
        assert!(t.changes_between(v1, v2).unwrap().is_empty());
        assert!(t.unchanged_between(v1, v2).unwrap());
        // But data survives.
        assert_eq!(t.scan(v2).unwrap().len(), 5);
    }

    #[test]
    fn change_scan_spanning_recluster_still_sees_dml() {
        let t = int_table(2);
        let v1 = t
            .commit_change(vec![row!(1i64), row!(2i64)], vec![], ts(1), TxnId(1))
            .unwrap();
        t.recluster(ts(2), TxnId(2)).unwrap();
        let v3 = t
            .commit_change(vec![row!(9i64)], vec![], ts(3), TxnId(3))
            .unwrap();
        let cs = t.changes_between(v1, v3).unwrap();
        assert_eq!(cs.inserts(), &[row!(9i64)]);
        assert!(cs.deletes().is_empty());
    }

    #[test]
    fn overwrite_replaces_everything() {
        let t = int_table(10);
        let v1 = t
            .commit_change(vec![row!(1i64), row!(2i64)], vec![], ts(1), TxnId(1))
            .unwrap();
        let v2 = t.overwrite(vec![row!(7i64)], ts(2), TxnId(2)).unwrap();
        assert_eq!(t.scan(v2).unwrap(), vec![row!(7i64)]);
        let cs = t.changes_between(v1, v2).unwrap();
        assert_eq!(cs.inserts(), &[row!(7i64)]);
        assert_eq!(cs.deletes().len(), 2);
    }

    #[test]
    fn commit_timestamps_must_not_regress() {
        let t = int_table(10);
        t.commit_change(vec![row!(1i64)], vec![], ts(10), TxnId(1)).unwrap();
        assert!(t
            .commit_change(vec![row!(2i64)], vec![], ts(5), TxnId(2))
            .is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = int_table(10);
        assert!(t
            .commit_change(vec![Row::new(vec![])], vec![], ts(1), TxnId(1))
            .is_err());
    }

    #[test]
    fn unchanged_between_detects_no_data() {
        let t = int_table(10);
        let v1 = t.commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1)).unwrap();
        let v2 = t.recluster(ts(2), TxnId(2)).unwrap();
        assert!(t.unchanged_between(v1, v2).unwrap());
        let v3 = t.commit_change(vec![row!(2i64)], vec![], ts(3), TxnId(3)).unwrap();
        assert!(!t.unchanged_between(v1, v3).unwrap());
    }

    #[test]
    fn prepared_change_installs_when_base_is_still_latest() {
        let t = int_table(2);
        let v1 = t
            .commit_change(vec![row!(1i64), row!(2i64), row!(3i64)], vec![], ts(1), TxnId(1))
            .unwrap();
        let prep = t
            .prepare_change_at(v1, vec![row!(9i64)], vec![row!(2i64)])
            .unwrap();
        assert_eq!(prep.base(), v1);
        assert_eq!(prep.row_count(), 3);
        let v2 = t.install_prepared(prep, ts(2), TxnId(2)).unwrap();
        let mut rows = t.scan(v2).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row!(1i64), row!(3i64), row!(9i64)]);
    }

    #[test]
    fn prepared_change_conflicts_when_version_moved() {
        let t = int_table(10);
        let v1 = t.commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1)).unwrap();
        let prep = t.prepare_change_at(v1, vec![row!(2i64)], vec![]).unwrap();
        // A concurrent commit lands first: first committer wins.
        t.commit_change(vec![row!(7i64)], vec![], ts(2), TxnId(2)).unwrap();
        let err = t.install_prepared(prep, ts(3), TxnId(3)).unwrap_err();
        assert!(err.is_conflict(), "got {err:?}");
        // Nothing was installed by the losing change.
        let mut rows = t.scan(t.latest_version()).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row!(1i64), row!(7i64)]);
    }

    #[test]
    fn prepared_overwrite_replaces_contents_on_install() {
        let t = int_table(2);
        let v1 = t
            .commit_change(vec![row!(1i64), row!(2i64), row!(3i64)], vec![], ts(1), TxnId(1))
            .unwrap();
        let prep = t.prepare_overwrite_at(v1, vec![row!(7i64), row!(8i64)]).unwrap();
        assert_eq!(prep.base(), v1);
        assert_eq!(prep.row_count(), 2);
        let v2 = t.install_prepared(prep, ts(2), TxnId(2)).unwrap();
        let mut rows = t.scan(v2).unwrap();
        rows.sort();
        assert_eq!(rows, vec![row!(7i64), row!(8i64)]);
        // The base version remains readable (time travel).
        assert_eq!(t.scan(v1).unwrap().len(), 3);
    }

    #[test]
    fn prepared_overwrite_conflicts_when_version_moved() {
        let t = int_table(10);
        let v1 = t.commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1)).unwrap();
        let prep = t.prepare_overwrite_at(v1, vec![row!(5i64)]).unwrap();
        t.commit_change(vec![row!(2i64)], vec![], ts(2), TxnId(2)).unwrap();
        let err = t.install_prepared(prep, ts(3), TxnId(3)).unwrap_err();
        assert!(err.is_conflict(), "got {err:?}");
    }

    #[test]
    fn prepare_against_old_version_sees_its_rows_only() {
        let t = int_table(10);
        let v1 = t.commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1)).unwrap();
        t.commit_change(vec![row!(2i64)], vec![], ts(2), TxnId(2)).unwrap();
        // Deleting row 2 against base v1 fails: v1 never contained it.
        assert!(t
            .prepare_change_at(v1, vec![], vec![row!(2i64)])
            .is_err());
    }

    #[test]
    fn commit_guard_validates_then_installs_atomically() {
        let t = int_table(10);
        let v1 = t.commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1)).unwrap();
        let prep = t.prepare_change_at(v1, vec![row!(2i64)], vec![]).unwrap();
        let guard = t.commit_guard();
        assert_eq!(guard.latest_version(), v1);
        assert_eq!(guard.latest_commit_ts(), ts(1));
        guard.validate_prepared(&prep).unwrap();
        let v2 = guard.install_validated(prep, ts(2), TxnId(2));
        drop(guard);
        assert_eq!(t.latest_version(), v2);
        assert_eq!(t.scan(v2).unwrap().len(), 2);
    }

    #[test]
    fn commit_guard_blocks_direct_writers_until_released() {
        // While a committer holds the guard, a direct `commit_change`
        // racer cannot slip a version in between validation and install:
        // it blocks on the same commit lock the guard holds.
        let t = std::sync::Arc::new(int_table(10));
        let v1 = t.commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1)).unwrap();
        let prep = t.prepare_change_at(v1, vec![row!(2i64)], vec![]).unwrap();
        let guard = t.commit_guard();
        let racer = {
            let t = std::sync::Arc::clone(&t);
            std::thread::spawn(move || {
                t.commit_change(vec![row!(9i64)], vec![], ts(9), TxnId(9)).unwrap()
            })
        };
        // The racer cannot commit while the guard is held; validation
        // stays true and the install succeeds.
        std::thread::sleep(std::time::Duration::from_millis(10));
        guard.validate_prepared(&prep).unwrap();
        let v2 = guard.install_validated(prep, ts(2), TxnId(2));
        drop(guard);
        let v3 = racer.join().unwrap();
        assert!(v3 > v2, "the racer serialized after the guarded install");
        assert_eq!(t.scan(v3).unwrap().len(), 3);
    }

    #[test]
    fn commit_guard_conflict_when_prepared_base_moved() {
        let t = int_table(10);
        let v1 = t.commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1)).unwrap();
        let prep = t.prepare_change_at(v1, vec![row!(2i64)], vec![]).unwrap();
        t.commit_change(vec![row!(7i64)], vec![], ts(2), TxnId(2)).unwrap();
        let guard = t.commit_guard();
        let err = guard.validate_prepared(&prep).unwrap_err();
        assert!(err.is_conflict(), "got {err:?}");
    }

    #[test]
    fn net_zero_dml_reports_unchanged() {
        let t = int_table(10);
        let v1 = t.commit_change(vec![row!(1i64)], vec![], ts(1), TxnId(1)).unwrap();
        // Insert then delete the same row: interval nets to zero.
        t.commit_change(vec![row!(5i64)], vec![], ts(2), TxnId(2)).unwrap();
        let v3 = t.commit_change(vec![], vec![row!(5i64)], ts(3), TxnId(3)).unwrap();
        assert!(t.changes_between(v1, v3).unwrap().is_empty());
        assert!(t.unchanged_between(v1, v3).unwrap());
    }
}
