//! Storage-wide scan telemetry.
//!
//! One process-wide counter: how many micro-partitions zone-map pruning
//! has skipped outright (their column data never read). Per-partition
//! effects are already observable through
//! [`Partition::data_reads`](crate::partition::Partition::data_reads)
//! and per-call counts through
//! [`TableSnapshot::count_pruned`](crate::snapshot::TableSnapshot::count_pruned);
//! this aggregate exists for operational surfaces — `SHOW STATS` over
//! the wire protocol reports it — where walking every table's partitions
//! under a lock would be the wrong trade.
//!
//! The counter is monotone and process-global (the engine is a single
//! process; a served "fleet" of engines would shard it per engine).

use std::sync::atomic::{AtomicU64, Ordering};

static ZONE_MAP_PRUNED: AtomicU64 = AtomicU64::new(0);

/// Record one partition skipped by a zone-map prune during a scan.
pub(crate) fn record_zone_map_prune() {
    ZONE_MAP_PRUNED.fetch_add(1, Ordering::Relaxed);
}

/// Total partitions skipped by zone-map pruning since process start.
/// Planning probes ([`count_pruned`]) do not count — only real scans
/// that never touched the pruned partition's data.
///
/// [`count_pruned`]: crate::snapshot::TableSnapshot::count_pruned
pub fn zone_map_pruned_total() -> u64 {
    ZONE_MAP_PRUNED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_is_monotone() {
        let before = zone_map_pruned_total();
        record_zone_map_prune();
        record_zone_map_prune();
        // Other tests scan concurrently; assert monotone growth, not an
        // exact delta.
        assert!(zone_map_pruned_total() >= before + 2);
    }
}
