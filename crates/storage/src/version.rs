//! Table versions: immutable snapshots in a table's history.

use dt_common::{PartitionId, Timestamp, TxnId, VersionId};

/// One immutable version of a table. A version lists the partitions that
/// comprise the table at that point, plus the copy-on-write delta (added /
/// removed partitions) relative to the previous version. Versions are
/// ordered by commit timestamp, which is totally ordered per account
/// (drawn from the Hybrid Logical Clock, §5.3).
#[derive(Debug, Clone)]
pub struct TableVersion {
    /// This version's id (dense index into the version chain).
    pub id: VersionId,
    /// Commit timestamp of the transaction that created this version.
    pub commit_ts: Timestamp,
    /// The transaction that created this version.
    pub created_by: TxnId,
    /// All partitions visible at this version, in scan order.
    pub partitions: Vec<PartitionId>,
    /// Partitions added relative to the previous version.
    pub added: Vec<PartitionId>,
    /// Partitions removed relative to the previous version.
    pub removed: Vec<PartitionId>,
    /// True when this version was produced by a *data-equivalent*
    /// maintenance operation (reclustering / defragmentation): files
    /// changed but logical contents did not (§5.5.2). Change scans skip
    /// such versions entirely instead of diffing their partitions.
    pub data_equivalent: bool,
    /// Total row count at this version (cached for cost estimation).
    pub row_count: usize,
}

impl TableVersion {
    /// True when this version changed nothing relative to its parent.
    pub fn is_empty_delta(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_delta_detection() {
        let v = TableVersion {
            id: VersionId(0),
            commit_ts: Timestamp::EPOCH,
            created_by: TxnId(0),
            partitions: vec![],
            added: vec![],
            removed: vec![],
            data_equivalent: false,
            row_count: 0,
        };
        assert!(v.is_empty_delta());
    }
}
