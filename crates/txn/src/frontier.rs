//! Frontiers: what a DT has consumed from each source.
//!
//! §5.3: "the data timestamp is an abstraction over a more complicated
//! object we call a frontier. A frontier is a map containing the table
//! version of each source table that the DT has consumed, and an HLC
//! timestamp of that refresh." Frontiers give precise per-source debugging
//! information and support advanced features (cloning, replication).
//! A refresh advances the DT over the interval between its current frontier
//! and a new frontier generated from the refresh timestamp.

use std::collections::BTreeMap;

use dt_common::{EntityId, Timestamp, VersionId};

/// The per-source consumption state of one DT at one data timestamp.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Frontier {
    /// The refresh (data) timestamp this frontier corresponds to.
    pub refresh_ts: Timestamp,
    /// Source entity → table version consumed at that refresh.
    sources: BTreeMap<EntityId, VersionId>,
}

impl Frontier {
    /// An empty frontier at the given data timestamp.
    pub fn at(refresh_ts: Timestamp) -> Self {
        Frontier {
            refresh_ts,
            sources: BTreeMap::new(),
        }
    }

    /// Build a frontier at `refresh_ts` from `(source, version)` pairs in
    /// one shot — how the MVCC read path pins the version of every table a
    /// snapshot covers.
    pub fn from_sources(
        refresh_ts: Timestamp,
        sources: impl IntoIterator<Item = (EntityId, VersionId)>,
    ) -> Self {
        Frontier {
            refresh_ts,
            sources: sources.into_iter().collect(),
        }
    }

    /// Record the version consumed from `source`.
    pub fn set(&mut self, source: EntityId, version: VersionId) {
        self.sources.insert(source, version);
    }

    /// The version consumed from `source`, if tracked.
    pub fn get(&self, source: EntityId) -> Option<VersionId> {
        self.sources.get(&source).copied()
    }

    /// Iterate over (source, version) pairs in source order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, VersionId)> + '_ {
        self.sources.iter().map(|(e, v)| (*e, *v))
    }

    /// Number of tracked sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when no source has been tracked yet.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// True when `self` is at or ahead of `other` on every source `other`
    /// tracks (i.e. this frontier dominates). The scheduler asserts that
    /// refreshes only move frontiers forward.
    pub fn dominates(&self, other: &Frontier) -> bool {
        if self.refresh_ts < other.refresh_ts {
            return false;
        }
        other
            .iter()
            .all(|(src, v)| self.get(src).map(|mine| mine >= v).unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn set_get_iterate() {
        let mut f = Frontier::at(ts(10));
        f.set(EntityId(1), VersionId(5));
        f.set(EntityId(2), VersionId(3));
        assert_eq!(f.get(EntityId(1)), Some(VersionId(5)));
        assert_eq!(f.get(EntityId(3)), None);
        let pairs: Vec<_> = f.iter().collect();
        assert_eq!(
            pairs,
            vec![(EntityId(1), VersionId(5)), (EntityId(2), VersionId(3))]
        );
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn domination_requires_every_source_to_advance() {
        let mut old = Frontier::at(ts(10));
        old.set(EntityId(1), VersionId(5));
        old.set(EntityId(2), VersionId(3));

        let mut new = Frontier::at(ts(20));
        new.set(EntityId(1), VersionId(6));
        new.set(EntityId(2), VersionId(3));
        assert!(new.dominates(&old));
        assert!(!old.dominates(&new));

        // Regressing one source breaks domination.
        let mut bad = Frontier::at(ts(30));
        bad.set(EntityId(1), VersionId(4));
        bad.set(EntityId(2), VersionId(9));
        assert!(!bad.dominates(&old));

        // Missing a source breaks domination.
        let mut partial = Frontier::at(ts(30));
        partial.set(EntityId(1), VersionId(9));
        assert!(!partial.dominates(&old));
    }

    #[test]
    fn from_sources_builds_in_one_shot() {
        let f = Frontier::from_sources(
            ts(5),
            [(EntityId(2), VersionId(1)), (EntityId(1), VersionId(4))],
        );
        assert_eq!(f.refresh_ts, ts(5));
        assert_eq!(f.get(EntityId(1)), Some(VersionId(4)));
        assert_eq!(f.get(EntityId(2)), Some(VersionId(1)));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn empty_frontier_is_dominated_by_anything_later() {
        let old = Frontier::at(ts(0));
        let new = Frontier::at(ts(1));
        assert!(new.dominates(&old));
    }
}
