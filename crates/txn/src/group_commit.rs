//! Writer group-commit: a leader/follower commit coordinator.
//!
//! Optimistic committers do all of their row work lock-free, but the final
//! validate+install step needs the engine write lock — and taking that
//! lock once *per commit* serializes every committer on the lock's
//! acquire/release cycle even when their table sets are disjoint.
//! [`CommitQueue`] amortizes that cost: concurrent committers enqueue
//! their prepared requests, and the first to arrive while no leader is
//! active becomes the **leader**. The leader drains the queue, processes
//! the whole batch in one call (the engine's commit path takes the write
//! lock once per batch and installs every transaction inside it), hands
//! each follower its individual outcome, and keeps draining — requests
//! that arrive while a batch is in flight form the next batch — until
//! the queue is empty or it hits the [`MAX_LEADER_ROUNDS`] fairness
//! bound, at which point it releases leadership and a waiting follower
//! takes over. Followers block until their outcome is ready.
//!
//! ## The gather window
//!
//! A freshly self-promoted leader may optionally wait a short
//! [`CommitQueue::set_gather`] window before draining its first batch, so
//! concurrent committers that are a few microseconds behind join it
//! instead of forming the next one. With a zero window (the default) the
//! queue drains immediately — right when processing a batch is cheap.
//! When each batch pays a fixed cost that amortizes over its members —
//! the durable commit path fsyncs once per batch — immediate draining
//! produces a convoy: N steady-state writers split into two alternating
//! cohorts (while one cohort's batch is flushing, the other enqueues and
//! is drained the instant leadership turns over, before the first cohort
//! is back), pinning the average batch near N/2 and paying twice the
//! necessary flushes. A window on the order of the inter-arrival gap
//! (far below the fsync cost it saves) lets the batch fill to ~N first.
//! This is the same trade as MySQL's `binlog_group_commit_sync_delay` or
//! PostgreSQL's `commit_delay`: a bounded latency add on the leader buys
//! fewer, larger flushes for everyone.
//!
//! The queue is deliberately generic: `T` is a prepared commit request,
//! `R` its outcome, and the batch processor is a closure supplied at
//! [`CommitQueue::submit`]. Every submitter passes the same logic; the
//! leader runs *its own* closure over everyone's requests, so no closure
//! is ever stored in the queue.
//!
//! ## Poisoning
//!
//! If the leader's processor panics, every request in the doomed batch is
//! marked poisoned and its submitter panics in turn (mirroring mutex
//! poisoning: an install that died half-way is an internal bug, and
//! pretending it was a clean conflict would hide it). Requests that were
//! still queued — not yet claimed by the panicking leader — survive: the
//! leader flag is cleared on the way out, so one of the waiting followers
//! promotes itself to leader and processes the remainder. The queue stays
//! usable after a poisoned batch.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Most batches a leader processes before handing leadership off to a
/// waiting follower. The leader's own outcome is ready after its first
/// round; every further round serves *other* threads' requests, so
/// without a bound one committer's `submit` latency would grow with
/// system-wide load under sustained traffic. Three rounds keeps the
/// batching benefit (a leader already holding the engine lock warm
/// drains the backlog that formed behind it) while bounding any one
/// caller's capture.
pub const MAX_LEADER_ROUNDS: usize = 3;

/// Where a follower's outcome is delivered.
struct Slot<R> {
    result: Mutex<Option<R>>,
    poisoned: AtomicBool,
}

struct Entry<T, R> {
    request: T,
    slot: Arc<Slot<R>>,
}

struct QueueState<T, R> {
    pending: Vec<Entry<T, R>>,
    /// True while some thread is the leader (draining and processing).
    leader: bool,
}

/// Counters describing the batching the queue has achieved so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Requests submitted in total.
    pub submitted: u64,
    /// Batches processed — each batch is one leader round, i.e. one
    /// engine-write-lock acquisition on the commit path.
    pub batches: u64,
    /// Largest batch processed in one round.
    pub max_batch: u64,
}

/// A group-commit queue: concurrent [`CommitQueue::submit`] calls are
/// batched, one submitter leads, everyone gets their own outcome. See the
/// module docs for the protocol.
pub struct CommitQueue<T, R> {
    state: Mutex<QueueState<T, R>>,
    /// Followers wait here for their slot to fill (or for leadership to
    /// free up after a poisoned batch).
    wake: Condvar,
    /// Nanoseconds a new leader waits before draining a batch that would
    /// contain only itself (see the module docs). Zero = drain at once.
    gather_ns: AtomicU64,
    submitted: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
}

impl<T, R> Default for CommitQueue<T, R> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, R> CommitQueue<T, R> {
    /// An empty queue.
    pub fn new() -> Self {
        CommitQueue {
            state: Mutex::new(QueueState {
                pending: Vec::new(),
                leader: false,
            }),
            wake: Condvar::new(),
            gather_ns: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
        }
    }

    /// Requests currently enqueued and not yet claimed by a leader
    /// (telemetry; tests use it to observe a pile-up forming).
    pub fn pending(&self) -> usize {
        self.state.lock().pending.len()
    }

    /// Set the gather window: how long a new leader waits for more
    /// committers to join before draining its first batch (see the
    /// module docs). Zero — the default — drains immediately. Worth
    /// setting only when every batch pays a fixed cost that amortizes
    /// over its members, e.g. one fsync per durable batch; the window
    /// should stay well below that per-batch cost.
    pub fn set_gather(&self, window: std::time::Duration) {
        self.gather_ns
            .store(window.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Batching counters so far.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            max_batch: self.max_batch.load(Ordering::Relaxed),
        }
    }

    /// Submit one request and block until a leader (possibly this thread)
    /// processes it; returns this request's outcome. `process` maps a
    /// batch of requests to their outcomes, one each, in order — it runs
    /// at most once per queue round, and only if this thread ends up
    /// leading (followers' closures are never called).
    ///
    /// # Panics
    ///
    /// Panics if a leader's processor panicked while this request was in
    /// its batch (see the module docs on poisoning), or if `process`
    /// returns a different number of outcomes than it was given requests.
    pub fn submit<F>(&self, request: T, mut process: F) -> R
    where
        F: FnMut(Vec<T>) -> Vec<R>,
    {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            poisoned: AtomicBool::new(false),
        });
        let mut st = self.state.lock();
        st.pending.push(Entry {
            request,
            slot: Arc::clone(&slot),
        });
        loop {
            // Checked under the state lock on every iteration. The leader
            // delivers results and poison marks *before* taking the state
            // lock to notify, so whatever this thread observes here is
            // consistent: either its outcome is already visible, or it
            // enters `wait` before the leader can acquire the lock — no
            // wakeup can be lost.
            if let Some(r) = slot.result.lock().take() {
                return r;
            }
            if slot.poisoned.load(Ordering::Acquire) {
                panic!("group-commit leader panicked while processing this batch");
            }
            if !st.leader {
                // Become the leader: drain and process until the queue is
                // empty — or the round bound is hit, at which point
                // leadership is handed off so this caller's latency stays
                // bounded under sustained load (its own outcome was ready
                // after round one; later rounds are altruism). The
                // handoff is the ordinary self-promotion path: leadership
                // is released and everyone woken under the state lock, so
                // a submitter of one of the still-pending entries takes
                // over.
                st.leader = true;
                // Gather before the FIRST round only: give committers
                // that are a few microseconds behind a moment to join the
                // batch. Waiting even when some requests are already
                // pending matters — under N steady writers, leadership
                // changes hands exactly when one cohort has enqueued and
                // the other is mid-statement, so draining instantly locks
                // in half-sized batches forever. Later rounds need no
                // window: whatever arrived while the previous round was
                // processing already formed one. The leader flag is set,
                // so submitters arriving during the sleep enqueue and
                // wait rather than self-promoting.
                let gather = self.gather_ns.load(Ordering::Relaxed);
                if gather > 0 {
                    drop(st);
                    std::thread::sleep(std::time::Duration::from_nanos(gather));
                    st = self.state.lock();
                }
                let mut rounds = 0;
                loop {
                    let batch = std::mem::take(&mut st.pending);
                    drop(st);
                    self.run_batch(batch, &mut process);
                    rounds += 1;
                    st = self.state.lock();
                    self.wake.notify_all();
                    if st.pending.is_empty() || rounds >= MAX_LEADER_ROUNDS {
                        st.leader = false;
                        drop(st);
                        return slot
                            .result
                            .lock()
                            .take()
                            .expect("the leader's own request is always in its first batch");
                    }
                }
            }
            // Follow: wait for the leader to deliver our outcome. A wake
            // without a result means either a spurious wakeup, or the
            // leader exited (cleanly or by panic) before claiming our
            // entry — the loop re-checks all three conditions.
            self.wake.wait(&mut st);
        }
    }

    /// Process one drained batch, delivering outcomes into the entries'
    /// slots. On processor panic (or outcome-arity mismatch) the whole
    /// batch is poisoned and leadership released before propagating.
    fn run_batch<F>(&self, batch: Vec<Entry<T, R>>, process: &mut F)
    where
        F: FnMut(Vec<T>) -> Vec<R>,
    {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch.fetch_max(batch.len() as u64, Ordering::Relaxed);
        let mut requests = Vec::with_capacity(batch.len());
        let mut slots = Vec::with_capacity(batch.len());
        for e in batch {
            requests.push(e.request);
            slots.push(e.slot);
        }
        let expected = slots.len();
        let outcome = catch_unwind(AssertUnwindSafe(|| process(requests)));
        match outcome {
            Ok(results) if results.len() == expected => {
                for (slot, r) in slots.iter().zip(results) {
                    *slot.result.lock() = Some(r);
                }
            }
            Ok(results) => {
                self.poison(&slots);
                panic!(
                    "group-commit processor returned {} outcome(s) for {} request(s)",
                    results.len(),
                    expected
                );
            }
            Err(payload) => {
                self.poison(&slots);
                resume_unwind(payload);
            }
        }
    }

    /// Mark every slot of a doomed batch poisoned, release leadership, and
    /// wake everyone: poisoned followers propagate the panic, still-queued
    /// followers self-promote to leader. The marks land before the state
    /// lock is taken and the notify fires under it, so no waiter can check
    /// its slot, miss the mark, and then miss the wakeup too.
    fn poison(&self, slots: &[Arc<Slot<R>>]) {
        for s in slots {
            s.poisoned.store(true, Ordering::Release);
        }
        let mut st = self.state.lock();
        st.leader = false;
        self.wake.notify_all();
        drop(st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;
    use std::time::Duration;

    fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
        for _ in 0..2000 {
            if cond() {
                return;
            }
            thread::sleep(Duration::from_millis(1));
        }
        panic!("timed out waiting for {what}");
    }

    #[test]
    fn single_submit_is_a_batch_of_one() {
        let q: CommitQueue<u32, u32> = CommitQueue::new();
        let r = q.submit(41, |reqs| reqs.into_iter().map(|x| x + 1).collect());
        assert_eq!(r, 42);
        let s = q.stats();
        assert_eq!((s.submitted, s.batches, s.max_batch), (1, 1, 1));
        assert_eq!(q.pending(), 0);
    }

    #[test]
    fn concurrent_submitters_share_one_leader_round() {
        // The first submitter leads and stalls inside its first batch;
        // three more submitters pile up, and the leader's SECOND round
        // processes all of them at once: 4 commits, 2 batches.
        let q: Arc<CommitQueue<u32, u32>> = Arc::new(CommitQueue::new());
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();

        let leader = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut first = true;
                q.submit(0, move |reqs| {
                    if first {
                        first = false;
                        entered_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                    }
                    reqs.into_iter().map(|x| x * 10).collect()
                })
            })
        };
        entered_rx.recv().unwrap();

        let followers: Vec<_> = (1..4u32)
            .map(|i| {
                let q = Arc::clone(&q);
                thread::spawn(move || q.submit(i, |reqs| reqs.into_iter().map(|x| x * 10).collect()))
            })
            .collect();
        wait_for(|| q.pending() == 3, "three followers to enqueue");
        release_tx.send(()).unwrap();

        assert_eq!(leader.join().unwrap(), 0);
        let mut results: Vec<u32> = followers.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, vec![10, 20, 30]);

        let s = q.stats();
        assert_eq!(s.submitted, 4);
        assert_eq!(s.batches, 2, "one stalled round + one batched round");
        assert_eq!(s.max_batch, 3);
    }

    #[test]
    fn gather_window_merges_a_near_miss_into_one_batch() {
        // With no window, a submitter that arrives while the first is
        // already processing lands in a second batch. With a generous
        // window, a submitter that arrives DURING the leader's gather
        // sleep joins the first batch: 2 commits, 1 batch, max_batch 2.
        let q: Arc<CommitQueue<u32, u32>> = Arc::new(CommitQueue::new());
        q.set_gather(Duration::from_millis(200));

        let first = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.submit(1, |reqs| reqs.into_iter().map(|x| x * 10).collect()))
        };
        // Wait until the first submitter has enqueued (it is now inside
        // its gather sleep, holding leadership), then submit the second.
        wait_for(|| q.stats().submitted == 1, "the first submitter to enqueue");
        let second = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.submit(2, |reqs| reqs.into_iter().map(|x| x * 10).collect()))
        };

        assert_eq!(first.join().unwrap(), 10);
        assert_eq!(second.join().unwrap(), 20);
        let s = q.stats();
        assert_eq!(
            (s.submitted, s.batches, s.max_batch),
            (2, 1, 2),
            "the second submitter must ride the gathered first batch"
        );
    }

    #[test]
    fn leader_panic_poisons_its_batch_and_frees_the_queue() {
        // Round 1 (leader alone) succeeds but stalls so a follower can
        // enqueue; round 2 — containing the follower — panics. The
        // follower observes the poison and panics too; a later submitter
        // finds no leader and proceeds normally.
        let q: Arc<CommitQueue<u32, u32>> = Arc::new(CommitQueue::new());
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();

        let leader = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                let mut round = 0;
                q.submit(0, move |reqs| {
                    round += 1;
                    if round == 1 {
                        entered_tx.send(()).unwrap();
                        release_rx.recv().unwrap();
                        reqs
                    } else {
                        panic!("injected leader failure");
                    }
                })
            })
        };
        entered_rx.recv().unwrap();

        let follower = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.submit(7, |reqs| reqs))
        };
        wait_for(|| q.pending() == 1, "the follower to enqueue");
        release_tx.send(()).unwrap();

        // The leader's submit propagates the injected panic; the follower
        // panics on the poisoned batch.
        assert!(leader.join().is_err(), "leader must propagate its panic");
        assert!(follower.join().is_err(), "poisoned follower must panic");

        // The queue did not deadlock or leak leadership.
        assert_eq!(q.pending(), 0);
        let r = q.submit(5, |reqs| reqs.into_iter().map(|x| x + 1).collect());
        assert_eq!(r, 6);
    }

    #[test]
    fn follower_self_promotes_when_leader_dies_before_claiming_it() {
        // The leader panics in its FIRST round (its own entry only). A
        // follower that enqueued during that round was never claimed, so
        // it promotes itself and completes normally.
        let q: Arc<CommitQueue<u32, u32>> = Arc::new(CommitQueue::new());
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();

        let leader = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.submit(0, move |_reqs: Vec<u32>| -> Vec<u32> {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    panic!("injected leader failure");
                })
            })
        };
        entered_rx.recv().unwrap();
        let follower = {
            let q = Arc::clone(&q);
            thread::spawn(move || q.submit(9, |reqs| reqs.into_iter().map(|x| x * 2).collect()))
        };
        wait_for(|| q.pending() == 1, "the follower to enqueue");
        release_tx.send(()).unwrap();

        assert!(leader.join().is_err());
        assert_eq!(follower.join().unwrap(), 18, "unclaimed follower self-promotes");
        assert_eq!(q.stats().batches, 2, "doomed leader round, then the follower's own");
    }

    #[test]
    fn leader_hands_off_after_the_round_bound() {
        // The leader's closure stalls at the start of every round; while
        // each round is in flight, one more submitter enqueues. After
        // MAX_LEADER_ROUNDS rounds the leader returns (its own outcome
        // was ready after round one) and the still-pending follower
        // self-promotes, processing itself with its OWN closure — proving
        // one committer is never captured indefinitely.
        let q: Arc<CommitQueue<u32, u32>> = Arc::new(CommitQueue::new());
        let (entered_tx, entered_rx) = mpsc::channel::<()>();
        let (release_tx, release_rx) = mpsc::channel::<()>();

        let leader = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                q.submit(0, move |reqs| {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    // Leader's closure marks outcomes +1000.
                    reqs.into_iter().map(|x| x + 1000).collect()
                })
            })
        };

        // Rounds 1..=MAX_LEADER_ROUNDS: before releasing each round, park
        // one more submitter behind it. Submitters 1 and 2 are processed
        // by the leader's rounds 2 and 3; submitter 3 is left pending
        // when the bound trips.
        let mut followers = Vec::new();
        for i in 1..=3u32 {
            entered_rx.recv().unwrap();
            let q2 = Arc::clone(&q);
            followers.push(thread::spawn(move || {
                // Follower closures mark outcomes +2000 — only the
                // self-promoted survivor's closure ever runs.
                q2.submit(i, |reqs| reqs.into_iter().map(|x| x + 2000).collect())
            }));
            wait_for(|| q.pending() == 1, "the next submitter to enqueue");
            release_tx.send(()).unwrap();
        }

        assert_eq!(leader.join().unwrap(), 1000, "leader got its round-one outcome");
        let mut results: Vec<u32> = followers.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_unstable();
        // Submitters 1 and 2 were served by the leader (+1000); submitter
        // 3 outlived the bound and served itself (+2000).
        assert_eq!(results, vec![1001, 1002, 2003]);
        assert_eq!(q.stats().batches, 4, "three leader rounds + the survivor's own");
    }
}
