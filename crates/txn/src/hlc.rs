//! Hybrid Logical Clock (Kulkarni et al., "Logical Physical Clocks").
//!
//! Snowflake draws commit timestamps from an HLC so that commits are totally
//! ordered relative to all other transactions in the account while staying
//! close to physical time (§5.3). We implement the full HLC algorithm —
//! a `(physical, logical)` pair with the send/receive rules — and also a
//! *folded* form: because the rest of the system keys table versions by a
//! single [`Timestamp`], [`Hlc::tick`] folds the logical component into
//! otherwise-unused microseconds (events in the simulation are far sparser
//! than 1/µs), preserving the two properties everything depends on: strict
//! monotonicity and closeness to physical time.

use std::sync::Arc;

use parking_lot::Mutex;

use dt_common::{Clock, Duration, Timestamp};

/// A full hybrid logical timestamp: physical microseconds plus a logical
/// counter that breaks ties between events within the same microsecond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HlcTimestamp {
    /// Physical component (microseconds since epoch).
    pub physical: i64,
    /// Logical tie-breaker.
    pub logical: u32,
}

impl HlcTimestamp {
    /// The zero timestamp.
    pub const ZERO: HlcTimestamp = HlcTimestamp {
        physical: 0,
        logical: 0,
    };
}

struct HlcState {
    last: HlcTimestamp,
}

/// A hybrid logical clock bound to a (simulated) physical clock.
pub struct Hlc {
    clock: Arc<dyn Clock>,
    state: Mutex<HlcState>,
}

impl Hlc {
    /// Create an HLC reading physical time from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Hlc {
            clock,
            state: Mutex::new(HlcState {
                last: HlcTimestamp::ZERO,
            }),
        }
    }

    /// The HLC "send/local event" rule: produce a timestamp strictly greater
    /// than every previously issued or observed one, with physical part
    /// `max(wall, last.physical)`.
    pub fn now_hlc(&self) -> HlcTimestamp {
        let wall = self.clock.now().as_micros();
        let mut st = self.state.lock();
        let next = if wall > st.last.physical {
            HlcTimestamp {
                physical: wall,
                logical: 0,
            }
        } else {
            HlcTimestamp {
                physical: st.last.physical,
                logical: st.last.logical + 1,
            }
        };
        st.last = next;
        next
    }

    /// The HLC "receive" rule: merge a remote timestamp so later local
    /// timestamps causally follow it.
    pub fn observe(&self, remote: HlcTimestamp) {
        let wall = self.clock.now().as_micros();
        let mut st = self.state.lock();
        let max_phys = wall.max(st.last.physical).max(remote.physical);
        let logical = if max_phys == st.last.physical && max_phys == remote.physical {
            st.last.logical.max(remote.logical) + 1
        } else if max_phys == st.last.physical {
            st.last.logical + 1
        } else if max_phys == remote.physical {
            remote.logical + 1
        } else {
            0
        };
        st.last = HlcTimestamp {
            physical: max_phys,
            logical,
        };
    }

    /// Folded commit timestamp: a plain [`Timestamp`] that is strictly
    /// monotonic across calls. When the wall clock has not advanced since
    /// the previous tick, the logical increment lands in the microsecond
    /// field (`last + 1µs`).
    pub fn tick(&self) -> Timestamp {
        let wall = self.clock.now().as_micros();
        let mut st = self.state.lock();
        let prev_folded = st.last.physical + st.last.logical as i64;
        let folded = wall.max(prev_folded + 1);
        st.last = HlcTimestamp {
            physical: folded,
            logical: 0,
        };
        Timestamp::from_micros(folded)
    }

    /// Folded tick with a floor: a strictly monotonic [`Timestamp`] that is
    /// additionally **strictly greater than `floor`** — the receive rule of
    /// the HLC folded into one atomic step. The optimistic commit path uses
    /// this to mint a commit timestamp past the latest version of every
    /// table it is about to install into, which is what makes the install
    /// itself infallible: a version stamped by `tick_after(latest)` can
    /// never regress behind the version chain it extends.
    pub fn tick_after(&self, floor: Timestamp) -> Timestamp {
        let wall = self.clock.now().as_micros();
        let mut st = self.state.lock();
        let prev_folded = st.last.physical + st.last.logical as i64;
        let folded = wall.max(prev_folded + 1).max(floor.as_micros() + 1);
        st.last = HlcTimestamp {
            physical: folded,
            logical: 0,
        };
        Timestamp::from_micros(folded)
    }

    /// Drift between the folded clock and physical time — bounded in the
    /// HLC algorithm by the number of same-instant events.
    pub fn drift(&self) -> Duration {
        let st = self.state.lock();
        Duration::from_micros(
            (st.last.physical + st.last.logical as i64) - self.clock.now().as_micros(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::SimClock;

    fn fixture() -> (SimClock, Hlc) {
        let c = SimClock::new();
        let h = Hlc::new(Arc::new(c.clone()));
        (c, h)
    }

    #[test]
    fn hlc_is_strictly_monotonic_without_clock_advance() {
        let (_c, h) = fixture();
        let a = h.now_hlc();
        let b = h.now_hlc();
        let d = h.now_hlc();
        assert!(a < b && b < d);
        assert_eq!(a.physical, b.physical);
        assert_eq!(b.logical + 1, d.logical);
    }

    #[test]
    fn hlc_tracks_physical_time() {
        let (c, h) = fixture();
        h.now_hlc();
        c.advance(Duration::from_secs(10));
        let t = h.now_hlc();
        assert_eq!(t.physical, Timestamp::from_secs(10).as_micros());
        assert_eq!(t.logical, 0);
    }

    #[test]
    fn observe_merges_remote_causality() {
        let (_c, h) = fixture();
        let remote = HlcTimestamp {
            physical: 5_000_000,
            logical: 7,
        };
        h.observe(remote);
        let t = h.now_hlc();
        assert!(t > remote, "local event must causally follow observed one");
    }

    #[test]
    fn folded_ticks_are_strictly_monotonic() {
        let (c, h) = fixture();
        let mut prev = h.tick();
        for i in 0..100 {
            if i % 10 == 0 {
                c.advance(Duration::from_micros(3));
            }
            let t = h.tick();
            assert!(t > prev);
            prev = t;
        }
    }

    #[test]
    fn tick_after_exceeds_floor_and_stays_monotonic() {
        let (_c, h) = fixture();
        let t1 = h.tick();
        // A floor far in the future (e.g. a version installed at a later
        // wall-clock instant) pushes the next tick past it.
        let floor = Timestamp::from_secs(500);
        let t2 = h.tick_after(floor);
        assert!(t2 > floor && t2 > t1);
        // Subsequent plain ticks causally follow the observed floor.
        let t3 = h.tick();
        assert!(t3 > t2);
        // A floor in the past changes nothing beyond normal monotonicity.
        let t4 = h.tick_after(Timestamp::from_micros(1));
        assert!(t4 > t3);
    }

    #[test]
    fn folded_ticks_stay_close_to_physical_time() {
        let (c, h) = fixture();
        for _ in 0..50 {
            h.tick();
        }
        // 50 same-instant events => at most 50µs of drift.
        assert!(h.drift() <= Duration::from_micros(50));
        c.advance(Duration::from_secs(1));
        h.tick();
        assert!(h.drift() <= Duration::ZERO);
    }
}
