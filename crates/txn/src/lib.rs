//! Transactions, clocks, and version resolution.
//!
//! Reproduces the transaction-engine pieces Dynamic Tables relies on (§5.3):
//!
//! * [`hlc::Hlc`] — a Hybrid Logical Clock (Kulkarni et al.) producing
//!   commit timestamps that are totally ordered per account and close to
//!   physical time.
//! * [`manager::TxnManager`] — begin/commit with snapshot timestamps,
//!   per-entity locks (each DT is locked for the duration of its refresh;
//!   concurrent refreshes of one DT are not permitted, §3.3.3/§5.3).
//! * [`refresh_map::RefreshTsMap`] — the mapping from *refresh timestamp*
//!   (data timestamp) to *commit timestamp / table version* for each DT.
//!   Regular tables resolve versions by commit timestamp; DTs reading other
//!   DTs must find the version created by the refresh with the **same**
//!   refresh timestamp, and fail hard if it is missing (production
//!   validation #1, §6.1).
//! * [`frontier::Frontier`] — the per-DT map of consumed source versions
//!   that the data timestamp abstracts over.

pub mod frontier;
pub mod hlc;
pub mod manager;
pub mod refresh_map;

pub use frontier::Frontier;
pub use hlc::{Hlc, HlcTimestamp};
pub use manager::{Txn, TxnManager};
pub use refresh_map::RefreshTsMap;
