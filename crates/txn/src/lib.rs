//! Transactions, clocks, and version resolution.
//!
//! Reproduces the transaction-engine pieces Dynamic Tables relies on (§5.3):
//!
//! * [`hlc::Hlc`] — a Hybrid Logical Clock (Kulkarni et al.) producing
//!   commit timestamps that are totally ordered per account and close to
//!   physical time.
//! * [`manager::TxnManager`] — begin/commit with snapshot timestamps,
//!   per-entity locks (each DT is locked for the duration of its refresh;
//!   concurrent refreshes of one DT are not permitted, §3.3.3/§5.3), and
//!   bounded garbage collection of terminal transaction state.
//! * [`lock_manager::LockManager`] — the admission lock table behind the
//!   manager: per-table optimistic try-locks (first-committer-wins) or
//!   pessimistic FIFO wait-queues with timeouts and a wait-for-cycle
//!   deadlock backstop, selectable per table (manually or adaptively).
//! * [`group_commit::CommitQueue`] — the writer group-commit coordinator:
//!   concurrent committers enqueue prepared requests, one leader installs
//!   the whole batch under a single engine-lock acquisition, and every
//!   follower receives its individual commit/conflict outcome.
//! * [`refresh_map::RefreshTsMap`] — the mapping from *refresh timestamp*
//!   (data timestamp) to *commit timestamp / table version* for each DT.
//!   Regular tables resolve versions by commit timestamp; DTs reading other
//!   DTs must find the version created by the refresh with the **same**
//!   refresh timestamp, and fail hard if it is missing (production
//!   validation #1, §6.1).
//! * [`frontier::Frontier`] — the per-DT map of consumed source versions
//!   that the data timestamp abstracts over.

pub mod frontier;
pub mod group_commit;
pub mod hlc;
pub mod lock_manager;
pub mod manager;
pub mod refresh_map;

pub use frontier::Frontier;
pub use group_commit::{CommitQueue, QueueStats};
pub use hlc::{Hlc, HlcTimestamp};
pub use lock_manager::{LockManager, LockMode, LockPolicy, LockStats};
pub use manager::{Txn, TxnManager};
pub use refresh_map::RefreshTsMap;
