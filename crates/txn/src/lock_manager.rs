//! Per-table lock manager: the admission layer of the commit pipeline.
//!
//! Every writer — interactive transactions, autocommit DML, and DT
//! refreshes — claims its touched tables here before doing any row work.
//! Each table runs in one of two modes:
//!
//! * **Optimistic** (the default): `try_lock` answers immediately. A held
//!   lock is a typed [`DtError::Conflict`] and the caller aborts/retries —
//!   first-committer-wins, exactly the pre-lock-manager behavior. Disjoint
//!   writers never contend, so this fast path stays wait-free.
//! * **Pessimistic**: contended writers park on a per-table FIFO wait-queue
//!   (a ticket queue over one condvar) instead of churning through
//!   abort-retry. Waits are bounded by a configurable timeout; a timeout
//!   surfaces as a typed `Conflict` so existing retry loops classify it
//!   exactly like an optimistic abort.
//!
//! Multi-table acquisition is **all-or-nothing in canonical table order**
//! (ascending [`EntityId`]): either every requested lock is held on return
//! or none that this call took are. Because every commit acquires in the
//! same order, queued writers cannot deadlock among themselves. Cycles can
//! still arise on *mixed-mode edges* — e.g. `SELECT ... FOR UPDATE` takes a
//! lock mid-transaction, and the later commit's canonical order crosses it.
//! A wait-for chain walk runs before every park as a backstop; the
//! transaction that would close a cycle is chosen as the victim and gets a
//! typed [`DtError::Deadlock`].
//!
//! Mode selection is per table: a manual policy pin
//! (`ALTER TABLE ... SET LOCKING {OPTIMISTIC|PESSIMISTIC|AUTO}`) or, under
//! `Auto`, whatever the engine's adaptive policy last decided
//! ([`LockManager::set_adaptive_mode`]).

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use dt_common::{DtError, DtResult, EntityId, TxnId};

/// How a table's admission lock behaves *right now*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Conflict-abort on contention (first-committer-wins fast path).
    Optimistic,
    /// Block on a FIFO wait-queue on contention.
    Pessimistic,
}

impl LockMode {
    /// Lowercase name, as shown in `SHOW`/docs.
    pub fn as_str(self) -> &'static str {
        match self {
            LockMode::Optimistic => "optimistic",
            LockMode::Pessimistic => "pessimistic",
        }
    }
}

/// Who decides a table's [`LockMode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockPolicy {
    /// Pinned optimistic by `ALTER TABLE ... SET LOCKING OPTIMISTIC`.
    Optimistic,
    /// Pinned pessimistic by `ALTER TABLE ... SET LOCKING PESSIMISTIC`.
    Pessimistic,
    /// The adaptive policy flips the mode based on observed abort rate
    /// (the default).
    Auto,
}

impl LockPolicy {
    /// Lowercase name, as shown in `SHOW`/docs.
    pub fn as_str(self) -> &'static str {
        match self {
            LockPolicy::Optimistic => "optimistic",
            LockPolicy::Pessimistic => "pessimistic",
            LockPolicy::Auto => "auto",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TableLocking {
    policy: LockPolicy,
    current: LockMode,
}

impl Default for TableLocking {
    fn default() -> Self {
        TableLocking {
            policy: LockPolicy::Auto,
            current: LockMode::Optimistic,
        }
    }
}

struct LockState {
    /// Which transaction currently holds each entity's admission lock.
    locks: HashMap<EntityId, TxnId>,
    /// FIFO wait-queues: `(ticket, txn)` in arrival order. A waiter may
    /// take the lock only when it is free *and* the waiter's ticket is at
    /// the front, so wakeup order never reorders the queue.
    queues: HashMap<EntityId, VecDeque<(u64, TxnId)>>,
    /// The wait-for graph: each transaction waits on at most one entity at
    /// a time (acquisition is sequential), so one edge per waiter suffices.
    waiting_on: HashMap<TxnId, EntityId>,
    /// Per-table mode/policy; absent entries mean `Auto`/`Optimistic`.
    tables: HashMap<EntityId, TableLocking>,
    next_ticket: u64,
}

/// A point-in-time snapshot of the manager's counters, surfaced through
/// `SHOW STATS` and the wire `ServerStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Wait episodes: times a transaction parked on a wait-queue.
    pub waits: u64,
    /// Total microseconds spent parked across all wait episodes.
    pub wait_time_us: u64,
    /// Waits abandoned because the lock timeout elapsed.
    pub timeouts: u64,
    /// Deadlock victims aborted by the cycle backstop.
    pub deadlocks: u64,
    /// Tables whose *current* mode is pessimistic.
    pub tables_pessimistic: u64,
    /// Mode changes applied by the adaptive policy (either direction).
    pub adaptive_flips: u64,
}

/// Default bound on a single multi-table acquisition's total wait.
pub const DEFAULT_WAIT_TIMEOUT: Duration = Duration::from_millis(500);

/// The admission lock table. See the module docs for the design; the
/// manager is shared (behind an `Arc`) between the [`TxnManager`]
/// (which releases a transaction's locks when it retires) and the engine
/// (which acquires without holding any engine-wide lock, so a parked
/// waiter never blocks readers or installers).
///
/// [`TxnManager`]: crate::TxnManager
pub struct LockManager {
    state: Mutex<LockState>,
    /// Notified whenever a lock is released or a waiter leaves a queue.
    available: Condvar,
    wait_timeout_us: AtomicU64,
    waits: AtomicU64,
    wait_time_us: AtomicU64,
    timeouts: AtomicU64,
    deadlocks: AtomicU64,
    adaptive_flips: AtomicU64,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new()
    }
}

impl LockManager {
    /// An empty lock table with the default wait timeout.
    pub fn new() -> Self {
        LockManager {
            state: Mutex::new(LockState {
                locks: HashMap::new(),
                queues: HashMap::new(),
                waiting_on: HashMap::new(),
                tables: HashMap::new(),
                next_ticket: 0,
            }),
            available: Condvar::new(),
            wait_timeout_us: AtomicU64::new(DEFAULT_WAIT_TIMEOUT.as_micros() as u64),
            waits: AtomicU64::new(0),
            wait_time_us: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            deadlocks: AtomicU64::new(0),
            adaptive_flips: AtomicU64::new(0),
        }
    }

    /// Bound every subsequent acquisition's total wait (`DbConfig`'s
    /// `lock_wait_timeout` knob).
    pub fn set_wait_timeout(&self, timeout: Duration) {
        self.wait_timeout_us
            .store(timeout.as_micros() as u64, Ordering::Relaxed);
    }

    /// The current acquisition wait bound.
    pub fn wait_timeout(&self) -> Duration {
        Duration::from_micros(self.wait_timeout_us.load(Ordering::Relaxed))
    }

    // -- mode / policy ------------------------------------------------------

    /// Pin or unpin a table's locking policy (the `ALTER TABLE ... SET
    /// LOCKING` override). Pinning also sets the current mode; returning to
    /// `Auto` resets to optimistic and hands control back to the adaptive
    /// policy.
    pub fn set_policy(&self, entity: EntityId, policy: LockPolicy) {
        let mut st = self.state.lock();
        let entry = st.tables.entry(entity).or_default();
        entry.policy = policy;
        entry.current = match policy {
            LockPolicy::Optimistic | LockPolicy::Auto => LockMode::Optimistic,
            LockPolicy::Pessimistic => LockMode::Pessimistic,
        };
    }

    /// The table's configured policy (`Auto` when never altered).
    pub fn policy(&self, entity: EntityId) -> LockPolicy {
        self.state
            .lock()
            .tables
            .get(&entity)
            .map(|t| t.policy)
            .unwrap_or(LockPolicy::Auto)
    }

    /// The table's current mode.
    pub fn mode(&self, entity: EntityId) -> LockMode {
        self.state
            .lock()
            .tables
            .get(&entity)
            .map(|t| t.current)
            .unwrap_or(LockMode::Optimistic)
    }

    /// Apply an adaptive-policy decision. No-op (returns `false`) when the
    /// table's policy is pinned by `ALTER` or the mode already matches;
    /// otherwise flips the mode and counts an adaptive flip.
    pub fn set_adaptive_mode(&self, entity: EntityId, mode: LockMode) -> bool {
        let mut st = self.state.lock();
        let entry = st.tables.entry(entity).or_default();
        if entry.policy != LockPolicy::Auto || entry.current == mode {
            return false;
        }
        entry.current = mode;
        self.adaptive_flips.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Drop a table's locking state entirely (table dropped from the
    /// catalog).
    pub fn forget_table(&self, entity: EntityId) {
        self.state.lock().tables.remove(&entity);
    }

    /// Counter snapshot for `SHOW STATS`.
    pub fn stats(&self) -> LockStats {
        let tables_pessimistic = {
            let st = self.state.lock();
            st.tables
                .values()
                .filter(|t| t.current == LockMode::Pessimistic)
                .count() as u64
        };
        LockStats {
            waits: self.waits.load(Ordering::Relaxed),
            wait_time_us: self.wait_time_us.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            deadlocks: self.deadlocks.load(Ordering::Relaxed),
            tables_pessimistic,
            adaptive_flips: self.adaptive_flips.load(Ordering::Relaxed),
        }
    }

    // -- acquisition --------------------------------------------------------

    /// Non-blocking single-entity claim, regardless of the table's mode.
    /// Used by the refresh scheduler ("previous refresh still running" →
    /// skip) and the legacy engine-lock DML path, which must never park
    /// while holding the engine write lock. Queued waiters count as
    /// contention so a barger cannot starve the FIFO queue.
    pub fn try_lock(&self, txn: TxnId, entity: EntityId) -> DtResult<()> {
        let mut st = self.state.lock();
        Self::try_one(&mut st, txn, entity).map(|_| ())
    }

    /// Non-blocking all-or-nothing claim of a whole entity set: either
    /// every lock is acquired in one critical section or none are.
    pub fn try_lock_all(&self, txn: TxnId, entities: impl IntoIterator<Item = EntityId>) -> DtResult<()> {
        let entities: Vec<EntityId> = entities.into_iter().collect();
        let mut st = self.state.lock();
        for e in &entities {
            if let Some(holder) = st.locks.get(e) {
                if *holder != txn {
                    return Err(DtError::Conflict(format!(
                        "entity {e} is locked by {holder}"
                    )));
                }
            } else if st.queues.get(e).is_some_and(|q| !q.is_empty()) {
                return Err(DtError::Conflict(format!(
                    "entity {e} has queued writers"
                )));
            }
        }
        for e in entities {
            st.locks.insert(e, txn);
        }
        Ok(())
    }

    /// Commit-time admission: claim every touched table in canonical
    /// (ascending `EntityId`) order, honoring each table's current mode —
    /// optimistic tables answer immediately with a typed `Conflict` on
    /// contention, pessimistic tables park FIFO under the shared timeout.
    /// All-or-nothing: on any failure, locks this call took are released.
    /// Returns the mode each entity was acquired under, so the caller
    /// knows which tables were serialized by waiting.
    pub fn acquire_for_commit(
        &self,
        txn: TxnId,
        entities: impl IntoIterator<Item = EntityId>,
    ) -> DtResult<Vec<(EntityId, LockMode)>> {
        self.acquire(txn, entities, None)
    }

    /// `SELECT ... FOR UPDATE`: claim the tables pessimistically (parking
    /// on contention regardless of configured mode), in canonical order,
    /// all-or-nothing. The locks are held until the transaction retires.
    pub fn lock_pessimistic(
        &self,
        txn: TxnId,
        entities: impl IntoIterator<Item = EntityId>,
    ) -> DtResult<()> {
        self.acquire(txn, entities, Some(LockMode::Pessimistic))
            .map(|_| ())
    }

    fn acquire(
        &self,
        txn: TxnId,
        entities: impl IntoIterator<Item = EntityId>,
        force: Option<LockMode>,
    ) -> DtResult<Vec<(EntityId, LockMode)>> {
        let mut sorted: Vec<EntityId> = entities.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        let deadline = Instant::now() + self.wait_timeout();

        let mut st = self.state.lock();
        let mut newly_acquired: Vec<EntityId> = Vec::new();
        let mut out = Vec::with_capacity(sorted.len());
        for entity in sorted {
            let mode = force.unwrap_or_else(|| {
                st.tables
                    .get(&entity)
                    .map(|t| t.current)
                    .unwrap_or(LockMode::Optimistic)
            });
            let result = match mode {
                LockMode::Optimistic => Self::try_one(&mut st, txn, entity),
                LockMode::Pessimistic => self.wait_one(&mut st, txn, entity, deadline),
            };
            match result {
                Ok(took) => {
                    if took {
                        newly_acquired.push(entity);
                    }
                    out.push((entity, mode));
                }
                Err(e) => {
                    // All-or-nothing: undo this call's acquisitions (locks
                    // the transaction held before the call stay held).
                    for n in newly_acquired {
                        st.locks.remove(&n);
                    }
                    self.available.notify_all();
                    return Err(e);
                }
            }
        }
        Ok(out)
    }

    /// Immediate claim attempt. `Ok(true)` = newly acquired, `Ok(false)` =
    /// already held by `txn` (re-entrant).
    fn try_one(st: &mut LockState, txn: TxnId, entity: EntityId) -> DtResult<bool> {
        match st.locks.get(&entity) {
            Some(holder) if *holder == txn => Ok(false),
            Some(holder) => Err(DtError::Conflict(format!(
                "entity {entity} is locked by {holder}"
            ))),
            None if st.queues.get(&entity).is_some_and(|q| !q.is_empty()) => Err(
                DtError::Conflict(format!("entity {entity} has queued writers")),
            ),
            None => {
                st.locks.insert(entity, txn);
                Ok(true)
            }
        }
    }

    /// Park FIFO until the lock is free and we are at the queue front, the
    /// deadline passes (typed `Conflict`), or waiting would close a
    /// wait-for cycle (typed `Deadlock`; the would-be waiter is the
    /// victim, since its edge is the one that completes the cycle).
    fn wait_one(
        &self,
        st: &mut parking_lot::MutexGuard<'_, LockState>,
        txn: TxnId,
        entity: EntityId,
        deadline: Instant,
    ) -> DtResult<bool> {
        match st.locks.get(&entity) {
            Some(holder) if *holder == txn => return Ok(false),
            None if st.queues.get(&entity).is_none_or(|q| q.is_empty()) => {
                st.locks.insert(entity, txn);
                return Ok(true);
            }
            _ => {}
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.queues.entry(entity).or_default().push_back((ticket, txn));
        st.waiting_on.insert(txn, entity);
        self.waits.fetch_add(1, Ordering::Relaxed);
        let parked_at = Instant::now();
        let outcome = loop {
            let free = !st.locks.contains_key(&entity);
            let at_front = st
                .queues
                .get(&entity)
                .and_then(|q| q.front())
                .is_some_and(|&(t, _)| t == ticket);
            if free && at_front {
                break Ok(());
            }
            if let Some(cycle) = Self::find_cycle(st, txn, entity) {
                break Err(DtError::deadlock(cycle));
            }
            let now = Instant::now();
            if now >= deadline {
                let holder = st
                    .locks
                    .get(&entity)
                    .map(|h| h.to_string())
                    .unwrap_or_else(|| "queued writers".to_string());
                break Err(DtError::Conflict(format!(
                    "lock timeout after {:?} waiting for entity {entity} (held by {holder})",
                    self.wait_timeout()
                )));
            }
            self.available.wait_for(st, deadline - now);
        };
        // Leave the queue and the wait-for graph on every path.
        if let Some(q) = st.queues.get_mut(&entity) {
            q.retain(|&(t, _)| t != ticket);
            if q.is_empty() {
                st.queues.remove(&entity);
            }
        }
        st.waiting_on.remove(&txn);
        self.wait_time_us
            .fetch_add(parked_at.elapsed().as_micros() as u64, Ordering::Relaxed);
        match outcome {
            Ok(()) => {
                st.locks.insert(entity, txn);
                Ok(true)
            }
            Err(e) => {
                if e.is_deadlock() {
                    self.deadlocks.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                // Our departure may put a successor at the queue front.
                self.available.notify_all();
                Err(e)
            }
        }
    }

    /// Walk the wait-for chain from the lock `me` wants. Each transaction
    /// waits on at most one entity (acquisition is sequential), so the
    /// graph's out-degree is ≤ 1 and a single chase finds any cycle
    /// through `me`.
    fn find_cycle(st: &LockState, me: TxnId, want: EntityId) -> Option<String> {
        let mut entity = want;
        let mut seen: HashSet<TxnId> = HashSet::new();
        let mut chain = format!("{me} waits on entity {want}");
        loop {
            let holder = *st.locks.get(&entity)?;
            if holder == me {
                return Some(chain);
            }
            if !seen.insert(holder) {
                // A cycle not involving `me`; its own members will detect it.
                return None;
            }
            let next = *st.waiting_on.get(&holder)?;
            chain.push_str(&format!(
                "; {holder} holds entity {entity} and waits on entity {next}"
            ));
            entity = next;
        }
    }

    // -- release / introspection -------------------------------------------

    /// Release every lock `txn` holds and wake all waiters. Called by the
    /// transaction manager when a transaction retires (commit or abort).
    pub fn release_all(&self, txn: TxnId) {
        let mut st = self.state.lock();
        let before = st.locks.len();
        st.locks.retain(|_, holder| *holder != txn);
        if st.locks.len() != before || !st.queues.is_empty() {
            self.available.notify_all();
        }
    }

    /// True when the entity's admission lock is held.
    pub fn is_locked(&self, entity: EntityId) -> bool {
        self.state.lock().locks.contains_key(&entity)
    }

    /// The current lock holder, if any.
    pub fn holder(&self, entity: EntityId) -> Option<TxnId> {
        self.state.lock().locks.get(&entity).copied()
    }

    /// Number of transactions parked on the entity's wait-queue.
    pub fn queue_len(&self, entity: EntityId) -> usize {
        self.state
            .lock()
            .queues
            .get(&entity)
            .map(|q| q.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(n: u64) -> TxnId {
        TxnId(n)
    }

    #[test]
    fn optimistic_try_lock_conflicts_and_is_reentrant() {
        let lm = LockManager::new();
        let e = EntityId(1);
        lm.try_lock(t(1), e).unwrap();
        lm.try_lock(t(1), e).unwrap();
        let err = lm.try_lock(t(2), e).unwrap_err();
        assert!(err.is_conflict());
        lm.release_all(t(1));
        lm.try_lock(t(2), e).unwrap();
    }

    #[test]
    fn pessimistic_wait_succeeds_after_release() {
        let lm = Arc::new(LockManager::new());
        lm.set_policy(EntityId(1), LockPolicy::Pessimistic);
        lm.try_lock(t(1), EntityId(1)).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || {
            lm2.acquire_for_commit(t(2), [EntityId(1)]).map(|m| m[0].1)
        });
        // Let the waiter park, then release.
        while lm.queue_len(EntityId(1)) == 0 {
            std::thread::yield_now();
        }
        lm.release_all(t(1));
        let mode = waiter.join().unwrap().unwrap();
        assert_eq!(mode, LockMode::Pessimistic);
        assert_eq!(lm.holder(EntityId(1)), Some(t(2)));
        let stats = lm.stats();
        assert_eq!(stats.waits, 1);
        assert_eq!(stats.timeouts, 0);
    }

    #[test]
    fn pessimistic_wait_times_out_as_typed_conflict() {
        let lm = LockManager::new();
        lm.set_wait_timeout(Duration::from_millis(10));
        let e = EntityId(1);
        lm.set_policy(e, LockPolicy::Pessimistic);
        lm.try_lock(t(1), e).unwrap();
        let err = lm.acquire_for_commit(t(2), [e]).unwrap_err();
        assert!(err.is_conflict(), "timeout must be a typed conflict: {err:?}");
        assert!(err.to_string().contains("lock timeout"), "{err}");
        // No admission state leaks: the queue is empty and the holder
        // unchanged.
        assert_eq!(lm.queue_len(e), 0);
        assert_eq!(lm.holder(e), Some(t(1)));
        assert_eq!(lm.stats().timeouts, 1);
    }

    #[test]
    fn multi_table_acquisition_is_all_or_nothing() {
        let lm = LockManager::new();
        lm.set_wait_timeout(Duration::from_millis(10));
        let (a, b) = (EntityId(1), EntityId(2));
        lm.set_policy(b, LockPolicy::Pessimistic);
        lm.try_lock(t(1), b).unwrap();
        // t2 wants {a, b}: a (optimistic) is granted, then b times out, so
        // a must be released again.
        let err = lm.acquire_for_commit(t(2), [b, a]).unwrap_err();
        assert!(err.is_conflict());
        assert!(!lm.is_locked(a), "all-or-nothing must undo partial grants");
        assert_eq!(lm.holder(b), Some(t(1)));
    }

    #[test]
    fn mixed_mode_cycle_is_detected_as_deadlock() {
        let lm = Arc::new(LockManager::new());
        lm.set_wait_timeout(Duration::from_secs(5));
        let (a, b) = (EntityId(1), EntityId(2));
        // t1 holds a and parks on b; t2 holds b and then wants a — the
        // second wait would close the cycle, so t2 is the victim.
        lm.try_lock(t(1), a).unwrap();
        lm.try_lock(t(2), b).unwrap();
        let lm2 = Arc::clone(&lm);
        let first = std::thread::spawn(move || lm2.lock_pessimistic(t(1), [b]));
        while lm.queue_len(b) == 0 {
            std::thread::yield_now();
        }
        let err = lm.lock_pessimistic(t(2), [a]).unwrap_err();
        assert!(err.is_deadlock(), "got {err:?}");
        assert_eq!(lm.stats().deadlocks, 1);
        // The victim aborts: releasing its locks unblocks the survivor.
        lm.release_all(t(2));
        first.join().unwrap().unwrap();
        assert_eq!(lm.holder(b), Some(t(1)));
    }

    #[test]
    fn queue_is_fifo() {
        let lm = Arc::new(LockManager::new());
        lm.set_wait_timeout(Duration::from_secs(10));
        let e = EntityId(1);
        lm.set_policy(e, LockPolicy::Pessimistic);
        lm.try_lock(t(100), e).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 1..=4u64 {
            let lm2 = Arc::clone(&lm);
            let order2 = Arc::clone(&order);
            // Serialize enqueue order: wait until the previous waiter is
            // parked before spawning the next.
            while lm.queue_len(e) < (i - 1) as usize {
                std::thread::yield_now();
            }
            handles.push(std::thread::spawn(move || {
                lm2.acquire_for_commit(t(i), [e]).unwrap();
                order2.lock().push(i);
                lm2.release_all(t(i));
            }));
        }
        while lm.queue_len(e) < 4 {
            std::thread::yield_now();
        }
        lm.release_all(t(100));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn try_lock_does_not_barge_past_waiters() {
        let lm = Arc::new(LockManager::new());
        lm.set_wait_timeout(Duration::from_secs(10));
        let e = EntityId(1);
        lm.try_lock(t(1), e).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || lm2.lock_pessimistic(t(2), [e]));
        while lm.queue_len(e) == 0 {
            std::thread::yield_now();
        }
        lm.release_all(t(1));
        // Even if the lock is momentarily free, a try-lock may not skip
        // the queue.
        let err_or_grant = lm.try_lock(t(3), e);
        if let Err(e) = &err_or_grant {
            assert!(e.is_conflict());
        } else {
            // The waiter won the race first and try_lock saw it as holder —
            // that is also queue-respecting; but a grant to t3 while t2 is
            // still queued would be a fairness bug.
            panic!("try_lock barged past a queued waiter");
        }
        waiter.join().unwrap().unwrap();
        assert_eq!(lm.holder(e), Some(t(2)));
    }

    #[test]
    fn adaptive_flips_respect_manual_pins() {
        let lm = LockManager::new();
        let e = EntityId(1);
        assert!(lm.set_adaptive_mode(e, LockMode::Pessimistic));
        assert!(!lm.set_adaptive_mode(e, LockMode::Pessimistic), "no-op flip");
        assert_eq!(lm.mode(e), LockMode::Pessimistic);
        assert_eq!(lm.stats().adaptive_flips, 1);
        // A manual pin takes priority and adaptive decisions become no-ops.
        lm.set_policy(e, LockPolicy::Optimistic);
        assert_eq!(lm.mode(e), LockMode::Optimistic);
        assert!(!lm.set_adaptive_mode(e, LockMode::Pessimistic));
        assert_eq!(lm.mode(e), LockMode::Optimistic);
        // Returning to AUTO hands control back.
        lm.set_policy(e, LockPolicy::Auto);
        assert!(lm.set_adaptive_mode(e, LockMode::Pessimistic));
        assert_eq!(lm.stats().adaptive_flips, 2);
    }
}
