//! The transaction manager: snapshots, locks, commits.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dt_common::{Clock, DtError, DtResult, EntityId, Timestamp, TxnId};

use crate::hlc::Hlc;

/// A live transaction handle.
#[derive(Debug, Clone)]
pub struct Txn {
    /// This transaction's id.
    pub id: TxnId,
    /// Snapshot timestamp: reads resolve table versions as of this instant
    /// (largest commit timestamp ≤ snapshot, §5.3).
    pub snapshot_ts: Timestamp,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TxnState {
    Active,
    Committed(Timestamp),
    Aborted,
}

struct ManagerState {
    next_txn: u64,
    txns: HashMap<TxnId, TxnState>,
    /// Entity locks: which transaction currently holds each entity.
    /// The paper's conflict management is lock-based: each DT is locked
    /// when a refresh begins and unlocked after it commits (§5.3).
    locks: HashMap<EntityId, TxnId>,
}

/// Transaction manager shared by the whole database instance.
pub struct TxnManager {
    hlc: Hlc,
    state: Mutex<ManagerState>,
}

impl TxnManager {
    /// Build over a physical clock.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        TxnManager {
            hlc: Hlc::new(clock),
            state: Mutex::new(ManagerState {
                next_txn: 1,
                txns: HashMap::new(),
                locks: HashMap::new(),
            }),
        }
    }

    /// Access the clock for timestamp generation outside transactions.
    pub fn hlc(&self) -> &Hlc {
        &self.hlc
    }

    /// Begin a transaction with a snapshot at the current HLC time.
    pub fn begin(&self) -> Txn {
        let snapshot_ts = self.hlc.tick();
        let mut st = self.state.lock();
        let id = TxnId(st.next_txn);
        st.next_txn += 1;
        st.txns.insert(id, TxnState::Active);
        Txn { id, snapshot_ts }
    }

    /// Pin a read timestamp for an MVCC snapshot read: an HLC tick, so the
    /// returned instant is strictly after every commit issued so far — a
    /// reader resolving each table's version as of this timestamp sees all
    /// committed data and none of what commits later (§5.3). Lock-free
    /// queries capture one of these together with a per-table version
    /// [`Frontier`](crate::Frontier) and then never consult shared state
    /// again.
    pub fn read_timestamp(&self) -> Timestamp {
        self.hlc.tick()
    }

    /// Begin a transaction with an explicit snapshot timestamp (time-travel
    /// queries and DT refreshes, which read as of their refresh timestamp).
    pub fn begin_at(&self, snapshot_ts: Timestamp) -> Txn {
        let mut st = self.state.lock();
        let id = TxnId(st.next_txn);
        st.next_txn += 1;
        st.txns.insert(id, TxnState::Active);
        Txn { id, snapshot_ts }
    }

    /// Try to lock `entity` for `txn`. Fails (without blocking) when another
    /// transaction holds the lock — the caller (the refresh scheduler)
    /// treats that as "previous refresh still running" and skips (§3.3.3).
    pub fn try_lock(&self, txn: &Txn, entity: EntityId) -> DtResult<()> {
        let mut st = self.state.lock();
        match st.locks.get(&entity) {
            Some(holder) if *holder != txn.id => Err(DtError::Txn(format!(
                "entity {entity} is locked by {holder}"
            ))),
            _ => {
                st.locks.insert(entity, txn.id);
                Ok(())
            }
        }
    }

    /// Try to lock every entity in `entities` for `txn`, atomically: either
    /// all locks are acquired in one critical section or none are. The
    /// all-or-nothing shape is what lets optimistic transaction commits
    /// take their per-table write locks without deadlock — two committers
    /// over overlapping table sets can never each hold half of the other's
    /// locks, because acquisition is indivisible.
    pub fn try_lock_all(
        &self,
        txn: &Txn,
        entities: impl IntoIterator<Item = EntityId>,
    ) -> DtResult<()> {
        let mut st = self.state.lock();
        let entities: Vec<EntityId> = entities.into_iter().collect();
        for e in &entities {
            if let Some(holder) = st.locks.get(e) {
                if *holder != txn.id {
                    return Err(DtError::Txn(format!(
                        "entity {e} is locked by {holder}"
                    )));
                }
            }
        }
        for e in entities {
            st.locks.insert(e, txn.id);
        }
        Ok(())
    }

    /// True when `entity` is currently locked.
    pub fn is_locked(&self, entity: EntityId) -> bool {
        self.state.lock().locks.contains_key(&entity)
    }

    fn release_locks(st: &mut ManagerState, txn: TxnId) {
        st.locks.retain(|_, holder| *holder != txn);
    }

    /// Commit: assign a commit timestamp from the HLC (totally ordered per
    /// account), release locks, and return the commit timestamp for the
    /// storage layer to stamp new table versions with.
    pub fn commit(&self, txn: &Txn) -> DtResult<Timestamp> {
        let commit_ts = self.hlc.tick();
        self.commit_at(txn, commit_ts)?;
        Ok(commit_ts)
    }

    /// Commit at an explicit, already-minted commit timestamp, releasing
    /// the transaction's locks. The optimistic commit path mints its
    /// timestamp *before* installing table versions (every version of a
    /// multi-table commit must carry the same stamp) and only then marks
    /// the transaction committed here.
    pub fn commit_at(&self, txn: &Txn, commit_ts: Timestamp) -> DtResult<()> {
        let mut st = self.state.lock();
        match st.txns.get(&txn.id) {
            Some(TxnState::Active) => {}
            Some(other) => {
                return Err(DtError::Txn(format!(
                    "transaction {} is not active ({other:?})",
                    txn.id
                )))
            }
            None => return Err(DtError::Txn(format!("unknown transaction {}", txn.id))),
        }
        st.txns.insert(txn.id, TxnState::Committed(commit_ts));
        Self::release_locks(&mut st, txn.id);
        Ok(())
    }

    /// Abort: release locks, mark aborted.
    pub fn abort(&self, txn: &Txn) -> DtResult<()> {
        let mut st = self.state.lock();
        match st.txns.get(&txn.id) {
            Some(TxnState::Active) => {}
            _ => return Err(DtError::Txn(format!("transaction {} is not active", txn.id))),
        }
        st.txns.insert(txn.id, TxnState::Aborted);
        Self::release_locks(&mut st, txn.id);
        Ok(())
    }

    /// The commit timestamp of a committed transaction.
    pub fn commit_ts(&self, txn: TxnId) -> Option<Timestamp> {
        match self.state.lock().txns.get(&txn) {
            Some(TxnState::Committed(ts)) => Some(*ts),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::SimClock;

    fn mgr() -> TxnManager {
        TxnManager::new(Arc::new(SimClock::new()))
    }

    #[test]
    fn read_timestamps_are_pinned_after_every_commit() {
        let m = mgr();
        let t = m.begin();
        let commit_ts = m.commit(&t).unwrap();
        let r1 = m.read_timestamp();
        assert!(r1 > commit_ts, "a read snapshot must see all commits");
        let r2 = m.read_timestamp();
        assert!(r2 > r1);
    }

    #[test]
    fn begin_commit_assigns_ordered_timestamps() {
        let m = mgr();
        let t1 = m.begin();
        let t2 = m.begin();
        assert!(t1.snapshot_ts < t2.snapshot_ts);
        let c1 = m.commit(&t1).unwrap();
        let c2 = m.commit(&t2).unwrap();
        assert!(c1 < c2);
        assert_eq!(m.commit_ts(t1.id), Some(c1));
    }

    #[test]
    fn double_commit_rejected() {
        let m = mgr();
        let t = m.begin();
        m.commit(&t).unwrap();
        assert!(m.commit(&t).is_err());
    }

    #[test]
    fn locks_conflict_and_release_on_commit() {
        let m = mgr();
        let e = EntityId(1);
        let t1 = m.begin();
        let t2 = m.begin();
        m.try_lock(&t1, e).unwrap();
        // Re-entrant for the same txn.
        m.try_lock(&t1, e).unwrap();
        assert!(m.try_lock(&t2, e).is_err());
        m.commit(&t1).unwrap();
        assert!(!m.is_locked(e));
        m.try_lock(&t2, e).unwrap();
        m.abort(&t2).unwrap();
        assert!(!m.is_locked(e));
    }

    #[test]
    fn abort_then_commit_rejected() {
        let m = mgr();
        let t = m.begin();
        m.abort(&t).unwrap();
        assert!(m.commit(&t).is_err());
    }

    #[test]
    fn try_lock_all_is_all_or_nothing() {
        let m = mgr();
        let (a, b, c) = (EntityId(1), EntityId(2), EntityId(3));
        let t1 = m.begin();
        let t2 = m.begin();
        m.try_lock(&t1, b).unwrap();
        // t2 wants {a, b, c}; b is held by t1, so nothing is acquired.
        assert!(m.try_lock_all(&t2, [a, b, c]).is_err());
        assert!(!m.is_locked(a));
        assert!(!m.is_locked(c));
        // Releasing b lets the whole set go through, re-entrantly for
        // entities t2 already holds.
        m.abort(&t1).unwrap();
        m.try_lock_all(&t2, [a, b]).unwrap();
        m.try_lock_all(&t2, [a, b, c]).unwrap();
        assert!(m.is_locked(a) && m.is_locked(b) && m.is_locked(c));
        m.commit(&t2).unwrap();
        assert!(!m.is_locked(a) && !m.is_locked(b) && !m.is_locked(c));
    }

    #[test]
    fn commit_at_uses_explicit_timestamp_and_releases_locks() {
        let m = mgr();
        let e = EntityId(7);
        let t = m.begin();
        m.try_lock(&t, e).unwrap();
        let ts = m.hlc().tick();
        m.commit_at(&t, ts).unwrap();
        assert_eq!(m.commit_ts(t.id), Some(ts));
        assert!(!m.is_locked(e));
        // Already committed: a second commit_at is rejected.
        assert!(m.commit_at(&t, ts).is_err());
    }

    #[test]
    fn begin_at_uses_explicit_snapshot() {
        let m = mgr();
        let t = m.begin_at(Timestamp::from_secs(1234));
        assert_eq!(t.snapshot_ts, Timestamp::from_secs(1234));
    }
}
