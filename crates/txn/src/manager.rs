//! The transaction manager: snapshots, locks, commits.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use dt_common::{Clock, DtError, DtResult, EntityId, Timestamp, TxnId};

use crate::hlc::Hlc;
use crate::lock_manager::LockManager;

/// A live transaction handle.
#[derive(Debug, Clone)]
pub struct Txn {
    /// This transaction's id.
    pub id: TxnId,
    /// Snapshot timestamp: reads resolve table versions as of this instant
    /// (largest commit timestamp ≤ snapshot, §5.3).
    pub snapshot_ts: Timestamp,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TxnState {
    /// Running; carries its snapshot timestamp so the GC watermark (the
    /// oldest live snapshot) is computable from the state map alone.
    Active(Timestamp),
    Committed(Timestamp),
    Aborted,
}

/// Terminal entries (Committed/Aborted) retained past this count become
/// eligible for the watermark sweep. Keeping a recent window means
/// telemetry lookups ([`TxnManager::commit_ts`]) keep working for any
/// commit a caller could plausibly still be holding on to.
pub const DEFAULT_SOFT_RETENTION: usize = 128;

/// Hard ceiling on retained terminal entries: past this, the oldest are
/// dropped even if an ancient live snapshot would otherwise pin them.
/// Bounds the manager's memory under churn no matter what.
pub const DEFAULT_HARD_RETENTION: usize = 4096;

struct ManagerState {
    next_txn: u64,
    txns: HashMap<TxnId, TxnState>,
    /// Terminal transactions in termination order, stamped with a terminal
    /// timestamp (commit ts for commits, an HLC tick for aborts). The GC
    /// sweep pops from the front.
    terminal: VecDeque<(TxnId, Timestamp)>,
}

impl ManagerState {
    /// The oldest live snapshot timestamp, or `None` when no transaction
    /// is active.
    fn watermark(&self) -> Option<Timestamp> {
        self.txns
            .values()
            .filter_map(|s| match s {
                TxnState::Active(ts) => Some(*ts),
                _ => None,
            })
            .min()
    }
}

/// Transaction manager shared by the whole database instance.
///
/// Terminal transaction state is garbage-collected: committed/aborted
/// entries are retained in a bounded window (so recent
/// [`TxnManager::commit_ts`] lookups resolve) and swept once they fall
/// behind the oldest live snapshot — with a hard cap so one long-lived
/// transaction cannot pin unbounded history. The map therefore stays
/// O(active + retention window) under arbitrary commit churn instead of
/// growing forever.
pub struct TxnManager {
    hlc: Hlc,
    state: Mutex<ManagerState>,
    /// Entity admission locks: which transaction currently holds each
    /// entity, plus the pessimistic wait-queues and per-table lock modes.
    /// The paper's conflict management is lock-based: each DT is locked
    /// when a refresh begins and unlocked after it commits (§5.3). Shared
    /// (`Arc`) so the engine's commit path can park on a wait-queue
    /// without holding any manager or engine lock.
    locks: Arc<LockManager>,
    soft_retention: usize,
    hard_retention: usize,
}

impl TxnManager {
    /// Build over a physical clock with default terminal-state retention.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self::with_retention(clock, DEFAULT_SOFT_RETENTION, DEFAULT_HARD_RETENTION)
    }

    /// Build with explicit terminal-state retention bounds (tests tighten
    /// these to make the GC observable at small scale).
    pub fn with_retention(clock: Arc<dyn Clock>, soft: usize, hard: usize) -> Self {
        TxnManager {
            hlc: Hlc::new(clock),
            state: Mutex::new(ManagerState {
                next_txn: 1,
                txns: HashMap::new(),
                terminal: VecDeque::new(),
            }),
            locks: Arc::new(LockManager::new()),
            soft_retention: soft,
            hard_retention: hard.max(soft),
        }
    }

    /// Access the clock for timestamp generation outside transactions.
    pub fn hlc(&self) -> &Hlc {
        &self.hlc
    }

    /// The shared admission lock table. Callers that may park on a
    /// pessimistic wait-queue clone this `Arc` and acquire through it
    /// directly, so no manager (or engine) lock is held while blocked.
    pub fn locks(&self) -> &Arc<LockManager> {
        &self.locks
    }

    /// Begin a transaction with a snapshot at the current HLC time.
    pub fn begin(&self) -> Txn {
        let snapshot_ts = self.hlc.tick();
        self.begin_at(snapshot_ts)
    }

    /// Pin a read timestamp for an MVCC snapshot read: an HLC tick, so the
    /// returned instant is strictly after every commit issued so far — a
    /// reader resolving each table's version as of this timestamp sees all
    /// committed data and none of what commits later (§5.3). Lock-free
    /// queries capture one of these together with a per-table version
    /// [`Frontier`](crate::Frontier) and then never consult shared state
    /// again.
    pub fn read_timestamp(&self) -> Timestamp {
        self.hlc.tick()
    }

    /// Begin a transaction with an explicit snapshot timestamp (time-travel
    /// queries and DT refreshes, which read as of their refresh timestamp).
    pub fn begin_at(&self, snapshot_ts: Timestamp) -> Txn {
        let mut st = self.state.lock();
        let id = TxnId(st.next_txn);
        st.next_txn += 1;
        st.txns.insert(id, TxnState::Active(snapshot_ts));
        self.sweep(&mut st);
        Txn { id, snapshot_ts }
    }

    /// Try to lock `entity` for `txn`. Fails (without blocking) when another
    /// transaction holds the lock — the caller (the refresh scheduler)
    /// treats that as "previous refresh still running" and skips (§3.3.3);
    /// the optimistic commit path treats it as a serialization conflict.
    pub fn try_lock(&self, txn: &Txn, entity: EntityId) -> DtResult<()> {
        self.locks.try_lock(txn.id, entity)
    }

    /// Try to lock every entity in `entities` for `txn`, atomically: either
    /// all locks are acquired in one critical section or none are. The
    /// all-or-nothing shape is what lets optimistic transaction commits
    /// take their per-table write locks without deadlock — two committers
    /// over overlapping table sets can never each hold half of the other's
    /// locks, because acquisition is indivisible.
    pub fn try_lock_all(
        &self,
        txn: &Txn,
        entities: impl IntoIterator<Item = EntityId>,
    ) -> DtResult<()> {
        self.locks.try_lock_all(txn.id, entities)
    }

    /// True when `entity` is currently locked.
    pub fn is_locked(&self, entity: EntityId) -> bool {
        self.locks.is_locked(entity)
    }

    /// Retire a transaction to a terminal state, stamp it into the sweep
    /// queue, release its admission locks (waking any queued waiters), and
    /// run the GC sweep.
    fn retire(&self, st: &mut ManagerState, txn: TxnId, state: TxnState, terminal_ts: Timestamp) {
        st.txns.insert(txn, state);
        st.terminal.push_back((txn, terminal_ts));
        self.locks.release_all(txn);
        self.sweep(st);
    }

    /// Drop terminal entries beyond the soft retention window once no live
    /// snapshot is older than them; drop unconditionally beyond the hard
    /// cap. Amortized O(1) per transaction (each entry is pushed and
    /// popped once); the watermark scan is O(map), and the map itself is
    /// bounded by this very sweep.
    fn sweep(&self, st: &mut ManagerState) {
        if st.terminal.len() <= self.soft_retention {
            return;
        }
        let watermark = st.watermark();
        while st.terminal.len() > self.soft_retention {
            let &(id, terminal_ts) = st.terminal.front().expect("len checked");
            let droppable = st.terminal.len() > self.hard_retention
                || watermark.is_none_or(|w| terminal_ts < w);
            if !droppable {
                break;
            }
            st.terminal.pop_front();
            st.txns.remove(&id);
        }
    }

    /// Commit: assign a commit timestamp from the HLC (totally ordered per
    /// account), release locks, and return the commit timestamp for the
    /// storage layer to stamp new table versions with.
    pub fn commit(&self, txn: &Txn) -> DtResult<Timestamp> {
        let commit_ts = self.hlc.tick();
        self.commit_at(txn, commit_ts)?;
        Ok(commit_ts)
    }

    /// Commit at an explicit, already-minted commit timestamp, releasing
    /// the transaction's locks. The optimistic commit path mints its
    /// timestamp *before* installing table versions (every version of a
    /// multi-table commit must carry the same stamp) and only then marks
    /// the transaction committed here.
    pub fn commit_at(&self, txn: &Txn, commit_ts: Timestamp) -> DtResult<()> {
        let mut st = self.state.lock();
        match st.txns.get(&txn.id) {
            Some(TxnState::Active(_)) => {}
            Some(other) => {
                return Err(DtError::Txn(format!(
                    "transaction {} is not active ({other:?})",
                    txn.id
                )))
            }
            None => return Err(DtError::Txn(format!("unknown transaction {}", txn.id))),
        }
        self.retire(&mut st, txn.id, TxnState::Committed(commit_ts), commit_ts);
        Ok(())
    }

    /// Abort: release locks, mark aborted.
    pub fn abort(&self, txn: &Txn) -> DtResult<()> {
        let mut st = self.state.lock();
        match st.txns.get(&txn.id) {
            Some(TxnState::Active(_)) => {}
            _ => return Err(DtError::Txn(format!("transaction {} is not active", txn.id))),
        }
        let terminal_ts = self.hlc.tick();
        self.retire(&mut st, txn.id, TxnState::Aborted, terminal_ts);
        Ok(())
    }

    /// True while the transaction is Active (begun, neither committed nor
    /// aborted). The optimistic install path checks this during its
    /// validation phase — *before* publishing any table version — so a
    /// transaction aborted out from under a queued commit fails cleanly
    /// instead of after its writes are already visible.
    pub fn is_active(&self, txn: &Txn) -> bool {
        matches!(
            self.state.lock().txns.get(&txn.id),
            Some(TxnState::Active(_))
        )
    }

    /// The commit timestamp of a committed transaction. Returns `None` for
    /// unknown, active, or aborted transactions — and for commits old
    /// enough that the terminal-state GC has forgotten them.
    pub fn commit_ts(&self, txn: TxnId) -> Option<Timestamp> {
        match self.state.lock().txns.get(&txn) {
            Some(TxnState::Committed(ts)) => Some(*ts),
            _ => None,
        }
    }

    /// Number of transactions currently tracked (active + retained
    /// terminal). The GC keeps this bounded under commit churn.
    pub fn tracked_txns(&self) -> usize {
        self.state.lock().txns.len()
    }

    /// Number of currently active (non-terminal) transactions.
    pub fn active_txns(&self) -> usize {
        self.state
            .lock()
            .txns
            .values()
            .filter(|s| matches!(s, TxnState::Active(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::SimClock;

    fn mgr() -> TxnManager {
        TxnManager::new(Arc::new(SimClock::new()))
    }

    #[test]
    fn read_timestamps_are_pinned_after_every_commit() {
        let m = mgr();
        let t = m.begin();
        let commit_ts = m.commit(&t).unwrap();
        let r1 = m.read_timestamp();
        assert!(r1 > commit_ts, "a read snapshot must see all commits");
        let r2 = m.read_timestamp();
        assert!(r2 > r1);
    }

    #[test]
    fn begin_commit_assigns_ordered_timestamps() {
        let m = mgr();
        let t1 = m.begin();
        let t2 = m.begin();
        assert!(t1.snapshot_ts < t2.snapshot_ts);
        let c1 = m.commit(&t1).unwrap();
        let c2 = m.commit(&t2).unwrap();
        assert!(c1 < c2);
        assert_eq!(m.commit_ts(t1.id), Some(c1));
    }

    #[test]
    fn double_commit_rejected() {
        let m = mgr();
        let t = m.begin();
        m.commit(&t).unwrap();
        assert!(m.commit(&t).is_err());
    }

    #[test]
    fn locks_conflict_and_release_on_commit() {
        let m = mgr();
        let e = EntityId(1);
        let t1 = m.begin();
        let t2 = m.begin();
        m.try_lock(&t1, e).unwrap();
        // Re-entrant for the same txn.
        m.try_lock(&t1, e).unwrap();
        let err = m.try_lock(&t2, e).unwrap_err();
        assert!(err.is_conflict(), "lock failures are typed conflicts: {err:?}");
        m.commit(&t1).unwrap();
        assert!(!m.is_locked(e));
        m.try_lock(&t2, e).unwrap();
        m.abort(&t2).unwrap();
        assert!(!m.is_locked(e));
    }

    #[test]
    fn abort_then_commit_rejected() {
        let m = mgr();
        let t = m.begin();
        m.abort(&t).unwrap();
        let err = m.commit(&t).unwrap_err();
        assert!(
            !err.is_conflict(),
            "lifecycle errors are not conflicts: {err:?}"
        );
    }

    #[test]
    fn try_lock_all_is_all_or_nothing() {
        let m = mgr();
        let (a, b, c) = (EntityId(1), EntityId(2), EntityId(3));
        let t1 = m.begin();
        let t2 = m.begin();
        m.try_lock(&t1, b).unwrap();
        // t2 wants {a, b, c}; b is held by t1, so nothing is acquired.
        let err = m.try_lock_all(&t2, [a, b, c]).unwrap_err();
        assert!(err.is_conflict(), "got {err:?}");
        assert!(!m.is_locked(a));
        assert!(!m.is_locked(c));
        // Releasing b lets the whole set go through, re-entrantly for
        // entities t2 already holds.
        m.abort(&t1).unwrap();
        m.try_lock_all(&t2, [a, b]).unwrap();
        m.try_lock_all(&t2, [a, b, c]).unwrap();
        assert!(m.is_locked(a) && m.is_locked(b) && m.is_locked(c));
        m.commit(&t2).unwrap();
        assert!(!m.is_locked(a) && !m.is_locked(b) && !m.is_locked(c));
    }

    #[test]
    fn commit_at_uses_explicit_timestamp_and_releases_locks() {
        let m = mgr();
        let e = EntityId(7);
        let t = m.begin();
        m.try_lock(&t, e).unwrap();
        let ts = m.hlc().tick();
        m.commit_at(&t, ts).unwrap();
        assert_eq!(m.commit_ts(t.id), Some(ts));
        assert!(!m.is_locked(e));
        // Already committed: a second commit_at is rejected.
        assert!(m.commit_at(&t, ts).is_err());
    }

    #[test]
    fn begin_at_uses_explicit_snapshot() {
        let m = mgr();
        let t = m.begin_at(Timestamp::from_secs(1234));
        assert_eq!(t.snapshot_ts, Timestamp::from_secs(1234));
    }

    #[test]
    fn terminal_state_stays_bounded_under_commit_churn() {
        let m = TxnManager::with_retention(Arc::new(SimClock::new()), 16, 64);
        for i in 0..10_000 {
            let t = m.begin();
            if i % 3 == 0 {
                m.abort(&t).unwrap();
            } else {
                m.commit(&t).unwrap();
            }
            assert!(
                m.tracked_txns() <= 16 + 2,
                "leaked to {} tracked txns at iteration {i}",
                m.tracked_txns()
            );
        }
        assert_eq!(m.active_txns(), 0);
    }

    #[test]
    fn long_lived_snapshot_defers_gc_until_the_hard_cap() {
        let m = TxnManager::with_retention(Arc::new(SimClock::new()), 16, 64);
        // An old transaction stays active: its snapshot pins the watermark,
        // so terminal entries newer than it are retained...
        let pinned = m.begin();
        for _ in 0..500 {
            let t = m.begin();
            m.commit(&t).unwrap();
        }
        let while_pinned = m.tracked_txns();
        assert!(
            while_pinned > 16,
            "watermark must retain entries a live snapshot postdates"
        );
        // ...but never beyond the hard cap.
        assert!(
            while_pinned <= 64 + 2,
            "hard cap exceeded: {while_pinned} tracked"
        );
        // Once the pin is gone, churn drains retention back to the soft
        // window.
        m.commit(&pinned).unwrap();
        for _ in 0..70 {
            let t = m.begin();
            m.commit(&t).unwrap();
        }
        assert!(m.tracked_txns() <= 16 + 2, "got {}", m.tracked_txns());
    }

    #[test]
    fn gc_forgets_ancient_commits_but_keeps_recent_ones() {
        let m = TxnManager::with_retention(Arc::new(SimClock::new()), 8, 32);
        let first = m.begin();
        m.commit(&first).unwrap();
        let mut last = None;
        for _ in 0..100 {
            let t = m.begin();
            let ts = m.commit(&t).unwrap();
            last = Some((t.id, ts));
        }
        let (last_id, last_ts) = last.unwrap();
        // The most recent commit is still resolvable; the ancient one has
        // been swept, and re-committing it reports an unknown transaction.
        assert_eq!(m.commit_ts(last_id), Some(last_ts));
        assert_eq!(m.commit_ts(first.id), None);
        let err = m.commit(&first).unwrap_err();
        assert!(matches!(err, DtError::Txn(_)), "got {err:?}");
    }
}
