//! Refresh-timestamp → table-version mapping.
//!
//! When a DT `d` reads from another DT `u`, resolving `u`'s version by
//! commit timestamp is wrong: there can be a significant delay between a
//! version's commit timestamp and its refresh (data) timestamp. §5.3: "we
//! store a mapping from refresh timestamp to commit timestamp for each DT's
//! table versions. When a refresh commits, we add a new entry to the
//! mapping; to look up a version for a particular refresh timestamp, we
//! consult the mapping." Lookups demand an **exact** entry; a miss is a
//! scheduler bug and fails the refresh rather than risk violating snapshot
//! isolation (production validation #1, §6.1).

use std::collections::BTreeMap;

use parking_lot::RwLock;

use dt_common::{DtError, DtResult, EntityId, Timestamp, VersionId};

/// One DT's refresh-timestamp index.
#[derive(Debug, Default)]
struct PerTable {
    /// refresh (data) timestamp → (version, commit timestamp).
    entries: BTreeMap<Timestamp, (VersionId, Timestamp)>,
}

/// The account-wide mapping, keyed by DT entity.
#[derive(Default)]
pub struct RefreshTsMap {
    tables: RwLock<std::collections::HashMap<EntityId, PerTable>>,
}

impl RefreshTsMap {
    /// Empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `entity`'s refresh at `refresh_ts` committed version
    /// `version` at `commit_ts`.
    pub fn record(
        &self,
        entity: EntityId,
        refresh_ts: Timestamp,
        version: VersionId,
        commit_ts: Timestamp,
    ) {
        let mut tables = self.tables.write();
        tables
            .entry(entity)
            .or_default()
            .entries
            .insert(refresh_ts, (version, commit_ts));
    }

    /// Exact lookup. Missing entries are hard errors: returning a nearby
    /// version would silently violate snapshot isolation.
    pub fn exact_version_for(
        &self,
        entity: EntityId,
        refresh_ts: Timestamp,
    ) -> DtResult<VersionId> {
        let tables = self.tables.read();
        tables
            .get(&entity)
            .and_then(|t| t.entries.get(&refresh_ts))
            .map(|(v, _)| *v)
            .ok_or(DtError::VersionNotFound {
                entity: entity.to_string(),
                refresh_ts: refresh_ts.as_micros(),
            })
    }

    /// The most recent refresh timestamp ≤ `at`, if any. Used when choosing
    /// an initialization timestamp (§3.1.2): a new downstream DT reuses the
    /// most recent upstream data timestamp within its target lag instead of
    /// forcing a fresh refresh of the whole upstream chain.
    pub fn latest_refresh_at_or_before(
        &self,
        entity: EntityId,
        at: Timestamp,
    ) -> Option<Timestamp> {
        let tables = self.tables.read();
        tables
            .get(&entity)
            .and_then(|t| t.entries.range(..=at).next_back().map(|(ts, _)| *ts))
    }

    /// The latest recorded refresh timestamp for `entity`.
    pub fn latest_refresh(&self, entity: EntityId) -> Option<Timestamp> {
        self.latest_refresh_at_or_before(entity, Timestamp::MAX)
    }

    /// Number of recorded refreshes for `entity` (time-travel granularity —
    /// a skipped refresh leaves no entry, §3.3.3).
    pub fn refresh_count(&self, entity: EntityId) -> usize {
        self.tables
            .read()
            .get(&entity)
            .map(|t| t.entries.len())
            .unwrap_or(0)
    }

    /// Dump every entry as `(entity, refresh_ts, version, commit_ts)`,
    /// deterministically ordered. The durability layer checkpoints this
    /// and rebuilds the map by replaying [`RefreshTsMap::record`] — losing
    /// an entry would break exact-lookup snapshot isolation (§5.3) for
    /// time travel after a restart.
    pub fn dump(&self) -> Vec<(EntityId, Timestamp, VersionId, Timestamp)> {
        let tables = self.tables.read();
        let mut out = Vec::new();
        let mut ids: Vec<EntityId> = tables.keys().copied().collect();
        ids.sort();
        for id in ids {
            for (refresh_ts, (version, commit_ts)) in &tables[&id].entries {
                out.push((id, *refresh_ts, *version, *commit_ts));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(s: i64) -> Timestamp {
        Timestamp::from_secs(s)
    }

    #[test]
    fn exact_lookup_hits_and_misses() {
        let m = RefreshTsMap::new();
        let e = EntityId(1);
        m.record(e, ts(100), VersionId(3), ts(105));
        assert_eq!(m.exact_version_for(e, ts(100)).unwrap(), VersionId(3));
        // A nearby-but-not-exact timestamp is a hard error.
        let err = m.exact_version_for(e, ts(101)).unwrap_err();
        assert!(matches!(err, DtError::VersionNotFound { .. }));
        assert!(m.exact_version_for(EntityId(9), ts(100)).is_err());
    }

    #[test]
    fn latest_refresh_navigation() {
        let m = RefreshTsMap::new();
        let e = EntityId(1);
        m.record(e, ts(10), VersionId(1), ts(11));
        m.record(e, ts(20), VersionId(2), ts(22));
        m.record(e, ts(30), VersionId(3), ts(33));
        assert_eq!(m.latest_refresh_at_or_before(e, ts(25)), Some(ts(20)));
        assert_eq!(m.latest_refresh_at_or_before(e, ts(5)), None);
        assert_eq!(m.latest_refresh(e), Some(ts(30)));
        assert_eq!(m.refresh_count(e), 3);
    }

    #[test]
    fn skipped_refresh_leaves_no_entry() {
        let m = RefreshTsMap::new();
        let e = EntityId(1);
        m.record(e, ts(10), VersionId(1), ts(11));
        // ts(20) skipped; next refresh covers the interval and records 30.
        m.record(e, ts(30), VersionId(2), ts(31));
        assert!(m.exact_version_for(e, ts(20)).is_err());
        assert_eq!(m.refresh_count(e), 2);
    }
}
