//! Checkpoint file storage: a single atomically-installed snapshot file.
//!
//! The checkpoint *content* (catalog, table stores, frontiers…) is encoded
//! by the layers that own it; this module stores the resulting opaque
//! payload crash-safely:
//!
//! ```text
//! checkpoint.dtck = [b"DTCK"][u16 version][u32 crc32(payload)]
//!                   [u64 payload_len][payload]
//! ```
//!
//! Installation is write-to-temp → fsync → rename → fsync-dir, so at
//! every instant the directory holds either the old complete checkpoint
//! or the new complete checkpoint, never a partial one. A checkpoint that
//! fails validation on read (bad magic/version/CRC/length) is reported as
//! [`DtError::Corruption`] rather than silently ignored: falling back to
//! an older state would *undo* commits, which is worse than refusing to
//! open.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use dt_common::{DtError, DtResult};

use crate::crc32::crc32;
use crate::log::io_err;
use crate::stats::WalStats;

const CKPT_MAGIC: &[u8; 4] = b"DTCK";
const CKPT_VERSION: u16 = 1;
const CKPT_HEADER_LEN: usize = 18;

/// The checkpoint file's name inside the durability directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.dtck";

fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join(CHECKPOINT_FILE)
}

/// Atomically install `payload` as the directory's checkpoint, replacing
/// any previous one.
pub fn write_checkpoint(dir: &Path, payload: &[u8], stats: &WalStats) -> DtResult<()> {
    fs::create_dir_all(dir).map_err(|e| io_err("create wal dir", e))?;
    let tmp = dir.join(format!("{CHECKPOINT_FILE}.tmp"));
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(|e| io_err("create checkpoint temp file", e))?;
    let mut header = Vec::with_capacity(CKPT_HEADER_LEN);
    header.extend_from_slice(CKPT_MAGIC);
    header.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    header.extend_from_slice(&crc32(payload).to_le_bytes());
    header.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.write_all(&header)
        .and_then(|_| file.write_all(payload))
        .map_err(|e| io_err("write checkpoint", e))?;
    file.sync_all().map_err(|e| io_err("sync checkpoint", e))?;
    stats.record_fsync();
    fs::rename(&tmp, checkpoint_path(dir)).map_err(|e| io_err("install checkpoint", e))?;
    let d = File::open(dir).map_err(|e| io_err("open wal dir for sync", e))?;
    d.sync_all().map_err(|e| io_err("sync wal dir", e))?;
    stats.record_fsync();
    stats.record_checkpoint();
    Ok(())
}

/// Load the directory's checkpoint payload, if one has ever been
/// installed. `Ok(None)` means "no checkpoint" (fresh directory);
/// validation failures are [`DtError::Corruption`].
pub fn read_checkpoint(dir: &Path) -> DtResult<Option<Vec<u8>>> {
    let path = checkpoint_path(dir);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f
            .read_to_end(&mut bytes)
            .map_err(|e| io_err("read checkpoint", e))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("open checkpoint", e)),
    };
    let corrupt = |msg: &str| DtError::Corruption(format!("{}: {msg}", path.display()));
    if bytes.len() < CKPT_HEADER_LEN {
        return Err(corrupt("file shorter than header"));
    }
    if &bytes[0..4] != CKPT_MAGIC {
        return Err(corrupt("bad checkpoint magic"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != CKPT_VERSION {
        return Err(corrupt("unsupported checkpoint version"));
    }
    let crc = u32::from_le_bytes(bytes[6..10].try_into().unwrap());
    let len = u64::from_le_bytes(bytes[10..18].try_into().unwrap()) as usize;
    let body = &bytes[CKPT_HEADER_LEN..];
    if body.len() != len {
        return Err(corrupt("checkpoint length mismatch"));
    }
    if crc32(body) != crc {
        return Err(corrupt("checkpoint CRC mismatch"));
    }
    Ok(Some(body.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir::TestDir;

    #[test]
    fn missing_checkpoint_is_none() {
        let td = TestDir::new("ckpt-none");
        assert_eq!(read_checkpoint(td.path()).unwrap(), None);
    }

    #[test]
    fn round_trips_and_replaces() {
        let td = TestDir::new("ckpt-rt");
        let stats = WalStats::default();
        write_checkpoint(td.path(), b"first state", &stats).unwrap();
        assert_eq!(read_checkpoint(td.path()).unwrap().unwrap(), b"first state");
        write_checkpoint(td.path(), b"second state", &stats).unwrap();
        assert_eq!(read_checkpoint(td.path()).unwrap().unwrap(), b"second state");
        assert_eq!(stats.snapshot().checkpoints, 2);
    }

    #[test]
    fn corruption_is_detected() {
        let td = TestDir::new("ckpt-corrupt");
        write_checkpoint(td.path(), b"some payload bytes", &WalStats::default()).unwrap();
        let path = td.path().join(CHECKPOINT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_checkpoint(td.path()),
            Err(DtError::Corruption(_))
        ));
        // Truncated file is also corruption, not silently empty.
        std::fs::write(&path, &bytes[..5]).unwrap();
        assert!(matches!(
            read_checkpoint(td.path()),
            Err(DtError::Corruption(_))
        ));
    }
}
