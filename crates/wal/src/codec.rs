//! Binary encoding primitives for WAL records and checkpoint payloads.
//!
//! Same conventions as the wire protocol's codec (`dt-wire`), hand-rolled
//! for the same reason — the vendored `serde` is a no-op stand-in and a
//! durable on-disk format wants an explicit, versioned byte layout anyway.
//! The two codecs are deliberately separate crates: `dt-wal` sits *below*
//! the catalog and storage layers (which serialize themselves with it),
//! while `dt-wire` sits above the whole engine, and neither may depend on
//! the other.
//!
//! Conventions (all integers little-endian):
//!
//! * fixed-width scalars: `u8`, `u16`, `u32`, `u64`, `i64`; `bool` is a
//!   `u8` that must be exactly 0 or 1; `f64` is its IEEE-754 bit pattern.
//! * `String` / `&str`: `u32` byte length, then that many UTF-8 bytes.
//! * sequences: `u32` element count, then each element.
//! * enums: a `u8` tag, then the variant's fields in order.
//!
//! Decoding is strict and never panics on malformed bytes: every read is
//! bounds-checked, collection lengths are validated against the remaining
//! payload *before* allocation, unknown tags fail, and [`Reader::finish`]
//! rejects trailing bytes. Failures surface as [`DtError::Corruption`] —
//! on the recovery path a record that decodes wrongly is corrupt disk
//! state, not a protocol error.

use dt_common::{DataType, DtError, DtResult, Duration, Row, Schema, Timestamp, Value};

fn err<T>(msg: impl Into<String>) -> DtResult<T> {
    Err(DtError::Corruption(msg.into()))
}

/// An append-only byte sink with typed `put_*` helpers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Start an empty payload.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed byte blob.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append a sequence length (element count).
    pub fn put_len(&mut self, n: usize) {
        self.put_u32(n as u32);
    }
}

/// A bounds-checked cursor over an encoded payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fail unless the payload was consumed exactly: a well-formed record
    /// leaves no trailing bytes, so any surplus means the format and the
    /// bytes on disk disagree.
    pub fn finish(self) -> DtResult<()> {
        if self.remaining() != 0 {
            return err(format!("{} trailing byte(s) after record", self.remaining()));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> DtResult<&'a [u8]> {
        if self.remaining() < n {
            return err(format!(
                "truncated record: need {n} byte(s), {} remain",
                self.remaining()
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self) -> DtResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> DtResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> DtResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> DtResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn get_i64(&mut self) -> DtResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a `bool`; any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> DtResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => err(format!("invalid bool byte {b:#04x}")),
        }
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> DtResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> DtResult<String> {
        let n = self.get_u32()? as usize;
        let bytes = self
            .take(n)
            .map_err(|_| DtError::Corruption(format!("string length {n} exceeds record")))?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| DtError::Corruption("string is not UTF-8".into()))
    }

    /// Read a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> DtResult<Vec<u8>> {
        let n = self.get_u32()? as usize;
        let bytes = self
            .take(n)
            .map_err(|_| DtError::Corruption(format!("blob length {n} exceeds record")))?;
        Ok(bytes.to_vec())
    }

    /// Read a sequence length, validated against a per-element lower
    /// bound on remaining bytes so a corrupt length cannot force a huge
    /// allocation before the payload inevitably runs dry.
    pub fn get_len(&mut self, min_element_size: usize) -> DtResult<usize> {
        let n = self.get_u32()? as usize;
        let floor = n.saturating_mul(min_element_size.max(1));
        if floor > self.remaining() {
            return err(format!(
                "sequence claims {n} element(s) but only {} byte(s) remain",
                self.remaining()
            ));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Engine data types. Tag assignments match dt-wire's so a byte dump of
// either format reads the same way, but the formats are versioned
// independently.
// ---------------------------------------------------------------------------

const VALUE_NULL: u8 = 0;
const VALUE_BOOL: u8 = 1;
const VALUE_INT: u8 = 2;
const VALUE_FLOAT: u8 = 3;
const VALUE_STR: u8 = 4;
const VALUE_TIMESTAMP: u8 = 5;
const VALUE_DURATION: u8 = 6;

/// Encode a [`Value`]: a one-byte tag, then the payload.
pub fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.put_u8(VALUE_NULL),
        Value::Bool(b) => {
            w.put_u8(VALUE_BOOL);
            w.put_bool(*b);
        }
        Value::Int(i) => {
            w.put_u8(VALUE_INT);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(VALUE_FLOAT);
            w.put_f64(*f);
        }
        Value::Str(s) => {
            w.put_u8(VALUE_STR);
            w.put_str(s);
        }
        Value::Timestamp(t) => {
            w.put_u8(VALUE_TIMESTAMP);
            w.put_i64(t.as_micros());
        }
        Value::Duration(d) => {
            w.put_u8(VALUE_DURATION);
            w.put_i64(d.as_micros());
        }
    }
}

/// Decode a [`Value`].
pub fn get_value(r: &mut Reader<'_>) -> DtResult<Value> {
    Ok(match r.get_u8()? {
        VALUE_NULL => Value::Null,
        VALUE_BOOL => Value::Bool(r.get_bool()?),
        VALUE_INT => Value::Int(r.get_i64()?),
        VALUE_FLOAT => Value::Float(r.get_f64()?),
        VALUE_STR => Value::Str(r.get_str()?),
        VALUE_TIMESTAMP => Value::Timestamp(Timestamp::from_micros(r.get_i64()?)),
        VALUE_DURATION => Value::Duration(Duration::from_micros(r.get_i64()?)),
        tag => return err(format!("unknown Value tag {tag:#04x}")),
    })
}

/// Encode a [`DataType`] as a one-byte tag.
pub fn put_data_type(w: &mut Writer, t: DataType) {
    w.put_u8(match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Str => 3,
        DataType::Timestamp => 4,
        DataType::Duration => 5,
    });
}

/// Decode a [`DataType`].
pub fn get_data_type(r: &mut Reader<'_>) -> DtResult<DataType> {
    Ok(match r.get_u8()? {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Str,
        4 => DataType::Timestamp,
        5 => DataType::Duration,
        tag => return err(format!("unknown DataType tag {tag:#04x}")),
    })
}

/// Encode a [`Schema`]: column count, then `(name, type)` per column.
pub fn put_schema(w: &mut Writer, s: &Schema) {
    w.put_len(s.columns().len());
    for c in s.columns() {
        w.put_str(&c.name);
        put_data_type(w, c.ty);
    }
}

/// Decode a [`Schema`].
pub fn get_schema(r: &mut Reader<'_>) -> DtResult<Schema> {
    // Each column is at least a 4-byte name length + 1-byte type tag.
    let n = r.get_len(5)?;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.get_str()?;
        let ty = get_data_type(r)?;
        cols.push(dt_common::Column::new(name, ty));
    }
    Ok(Schema::new(cols))
}

/// Encode a [`Row`]: value count, then each value.
pub fn put_row(w: &mut Writer, row: &Row) {
    w.put_len(row.len());
    for v in row.values() {
        put_value(w, v);
    }
}

/// Decode a [`Row`].
pub fn get_row(r: &mut Reader<'_>) -> DtResult<Row> {
    // A value is at least its 1-byte tag.
    let n = r.get_len(1)?;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(get_value(r)?);
    }
    Ok(Row::new(vals))
}

/// Encode a row set: row count, then each row.
pub fn put_rows(w: &mut Writer, rows: &[Row]) {
    w.put_len(rows.len());
    for row in rows {
        put_row(w, row);
    }
}

/// Decode a row set.
pub fn get_rows(r: &mut Reader<'_>) -> DtResult<Vec<Row>> {
    // A row is at least its 4-byte value count.
    let n = r.get_len(4)?;
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push(get_row(r)?);
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::Column;

    #[test]
    fn scalars_and_rows_round_trip() {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("name", DataType::Str),
        ]);
        let rows = vec![
            Row::new(vec![Value::Int(i64::MIN), Value::Str("héllo".into())]),
            Row::new(vec![Value::Null, Value::Null]),
        ];
        let mut w = Writer::new();
        put_schema(&mut w, &schema);
        put_rows(&mut w, &rows);
        w.put_bytes(b"opaque blob");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(get_schema(&mut r).unwrap(), schema);
        assert_eq!(get_rows(&mut r).unwrap(), rows);
        assert_eq!(r.get_bytes().unwrap(), b"opaque blob");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = Writer::new();
        put_value(&mut w, &Value::Str("payload".into()));
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(get_value(&mut r).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupt_lengths_cannot_force_allocation() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(get_rows(&mut r).is_err());

        let mut r = Reader::new(&bytes);
        assert!(r.get_bytes().is_err());
    }

    #[test]
    fn malformed_input_is_corruption() {
        let mut r = Reader::new(&[0x7F]);
        match get_value(&mut r) {
            Err(DtError::Corruption(_)) => {}
            other => panic!("expected Corruption, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = Writer::new();
        put_value(&mut w, &Value::Int(7));
        w.put_u8(0xFF);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        get_value(&mut r).unwrap();
        assert!(r.finish().is_err());
    }
}
