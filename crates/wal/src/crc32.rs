//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
//! under every WAL record frame and checkpoint file.
//!
//! Hand-rolled because the workspace has no registry access and the
//! vendored dependency stand-ins do not include a checksum crate. The
//! table-driven form processes a byte per step; that is plenty for WAL
//! appends, whose cost is dominated by the fsync.

/// The 256-entry lookup table for the reflected IEEE polynomial,
/// generated at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (IEEE, as produced by zlib's `crc32` and the
/// `crc32fast` crate).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"hello, wal");
        let mut corrupted = b"hello, wal".to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }
}
