//! Write-ahead logging and checkpointing for the Dynamic Tables engine.
//!
//! This crate owns the *durable byte formats* and the *file discipline* —
//! what the higher layers put in those bytes is their business:
//!
//! * [`codec`] — the explicit little-endian binary codec (in the
//!   `dt-wire` style) that WAL records and checkpoint payloads are
//!   written in, including `Value`/`Row`/`Schema` encoders the storage
//!   and catalog layers share.
//! * [`crc32`] — hand-rolled IEEE CRC-32, the integrity check under
//!   every record frame and checkpoint file.
//! * [`log`] — the append-only segmented WAL: one `write_all` + one
//!   `fdatasync` per group-commit batch, torn-tail truncation on
//!   recovery, segment roll + sealed-segment removal behind checkpoints.
//! * [`checkpoint`] — atomic install (temp + rename) and validated load
//!   of the single checkpoint snapshot file.
//! * [`stats`] — the atomic telemetry counters `SHOW STATS` reports.
//!
//! `dt-wal` sits directly above `dt-common` so that `dt-catalog`,
//! `dt-storage`, and `dt-core` can all serialize themselves with one
//! codec without a dependency cycle.

pub mod checkpoint;
pub mod codec;
pub mod crc32;
pub mod log;
pub mod stats;

pub use checkpoint::{read_checkpoint, write_checkpoint, CHECKPOINT_FILE};
pub use codec::{Reader, Writer};
pub use log::{Recovered, Wal, DEFAULT_SEGMENT_BYTES, MAX_RECORD_BYTES};
pub use stats::{WalStats, WalStatsSnapshot};

#[cfg(test)]
pub(crate) mod test_dir {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    static NEXT: AtomicU64 = AtomicU64::new(0);

    /// A unique per-test scratch directory, removed on drop.
    pub struct TestDir {
        path: PathBuf,
    }

    impl TestDir {
        pub fn new(tag: &str) -> TestDir {
            let n = NEXT.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "dt-wal-test-{}-{tag}-{n}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&path);
            std::fs::create_dir_all(&path).unwrap();
            TestDir { path }
        }

        pub fn path(&self) -> &Path {
            &self.path
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.path);
        }
    }
}
