//! The append-only segmented write-ahead log.
//!
//! On-disk layout, rooted at the durability directory:
//!
//! ```text
//! wal-00000001.seg          sealed segment (behind a later segment)
//! wal-00000002.seg          active segment (appends go here)
//! ```
//!
//! Each segment starts with a 14-byte header — magic `"DTWL"`, a `u16`
//! format version, and the segment's `u64` sequence number (which must
//! match the filename, so a misfiled segment is caught) — followed by
//! length+CRC framed records:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload bytes]
//! ```
//!
//! Append policy: [`Wal::append_batch`] writes every record of a
//! group-commit batch with a single `write_all` and a single
//! `fdatasync`. That is the classic group-commit amortization — the
//! leader pays one fsync for the whole batch, followers pay none.
//!
//! Recovery policy: segments are scanned in sequence order. A framing or
//! CRC failure in the **final** segment is a torn tail — expected after a
//! crash mid-append — and is truncated in place, after which the segment
//! is reused for appends. The same failure in any earlier (sealed)
//! segment cannot be explained by a crash (sealed segments were fully
//! synced before their successor was created) and surfaces as
//! [`DtError::Corruption`].

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use dt_common::{DtError, DtResult};

use crate::crc32::crc32;
use crate::stats::WalStats;

const SEG_MAGIC: &[u8; 4] = b"DTWL";
const SEG_VERSION: u16 = 1;
const SEG_HEADER_LEN: u64 = 14;
const FRAME_HEADER_LEN: u64 = 8;

/// Upper bound on a single record payload. A length prefix beyond this is
/// treated as frame corruption rather than an allocation request.
pub const MAX_RECORD_BYTES: u32 = 256 * 1024 * 1024;

/// Default segment-roll threshold.
pub const DEFAULT_SEGMENT_BYTES: u64 = 16 * 1024 * 1024;

pub(crate) fn io_err(ctx: &str, e: std::io::Error) -> DtError {
    DtError::Io(format!("{ctx}: {e}"))
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.seg"))
}

fn segment_header(seq: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(SEG_HEADER_LEN as usize);
    h.extend_from_slice(SEG_MAGIC);
    h.extend_from_slice(&SEG_VERSION.to_le_bytes());
    h.extend_from_slice(&seq.to_le_bytes());
    h
}

/// Sync the directory itself so segment creation/removal survives a crash.
fn sync_dir(dir: &Path, stats: &WalStats) -> DtResult<()> {
    let d = File::open(dir).map_err(|e| io_err("open wal dir for sync", e))?;
    d.sync_all().map_err(|e| io_err("sync wal dir", e))?;
    stats.record_fsync();
    Ok(())
}

/// List `wal-*.seg` files in `dir`, sorted by sequence number.
fn list_segments(dir: &Path) -> DtResult<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| io_err("read wal dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read wal dir entry", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_prefix("wal-").and_then(|s| s.strip_suffix(".seg")) else {
            continue;
        };
        let Ok(seq) = stem.parse::<u64>() else { continue };
        segs.push((seq, entry.path()));
    }
    segs.sort_by_key(|(seq, _)| *seq);
    Ok(segs)
}

/// What a [`Wal::open`] scan found on disk.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Every intact record payload, in append order across segments.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn/corrupt tail was truncated off the final segment.
    pub truncated_tail: bool,
}

/// The append side of the write-ahead log. One instance per engine,
/// behind the engine's WAL mutex; [`Wal::open`] also performs the
/// recovery scan so there is exactly one reader of the segment format.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    stats: Arc<WalStats>,
    segment_bytes: u64,
    file: File,
    seq: u64,
    written: u64,
}

impl Wal {
    /// Open (creating if needed) the WAL rooted at `dir`, scanning any
    /// existing segments. Returns the appender positioned after the last
    /// intact record, plus every intact record for replay.
    pub fn open(dir: &Path, stats: Arc<WalStats>) -> DtResult<(Wal, Recovered)> {
        Wal::open_with_segment_bytes(dir, stats, DEFAULT_SEGMENT_BYTES)
    }

    /// [`Wal::open`] with an explicit segment-roll threshold (tests use a
    /// tiny threshold to exercise multi-segment recovery).
    pub fn open_with_segment_bytes(
        dir: &Path,
        stats: Arc<WalStats>,
        segment_bytes: u64,
    ) -> DtResult<(Wal, Recovered)> {
        fs::create_dir_all(dir).map_err(|e| io_err("create wal dir", e))?;
        let segs = list_segments(dir)?;

        if segs.is_empty() {
            let wal = Wal::create_segment(dir, stats, segment_bytes, 1)?;
            return Ok((wal, Recovered::default()));
        }

        let mut recovered = Recovered::default();
        let last = segs.len() - 1;
        let mut tail_offset = SEG_HEADER_LEN;
        for (i, (seq, path)) in segs.iter().enumerate() {
            let is_final = i == last;
            let good =
                scan_segment(path, *seq, is_final, &mut recovered.records)?;
            if is_final {
                tail_offset = good.offset;
                recovered.truncated_tail = good.torn;
            }
        }

        let (seq, path) = segs[last].clone();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("reopen wal segment", e))?;
        let file_len = file
            .metadata()
            .map_err(|e| io_err("stat wal segment", e))?
            .len();
        if recovered.truncated_tail || file_len > tail_offset {
            // Cut the torn tail off so the next append starts at a clean
            // record boundary, and make the cut durable before appending.
            file.set_len(tail_offset)
                .map_err(|e| io_err("truncate torn wal tail", e))?;
            file.sync_all()
                .map_err(|e| io_err("sync truncated wal segment", e))?;
            stats.record_fsync();
        }
        if tail_offset == SEG_HEADER_LEN && file_len < SEG_HEADER_LEN {
            // The final segment died before its header hit disk; rewrite it.
            file.seek(SeekFrom::Start(0))
                .map_err(|e| io_err("seek wal segment", e))?;
            file.write_all(&segment_header(seq))
                .map_err(|e| io_err("rewrite wal segment header", e))?;
            file.sync_all()
                .map_err(|e| io_err("sync wal segment header", e))?;
            stats.record_fsync();
        }
        file.seek(SeekFrom::Start(tail_offset))
            .map_err(|e| io_err("seek wal segment end", e))?;

        Ok((
            Wal {
                dir: dir.to_path_buf(),
                stats,
                segment_bytes,
                file,
                seq,
                written: tail_offset,
            },
            recovered,
        ))
    }

    fn create_segment(
        dir: &Path,
        stats: Arc<WalStats>,
        segment_bytes: u64,
        seq: u64,
    ) -> DtResult<Wal> {
        let path = segment_path(dir, seq);
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| io_err("create wal segment", e))?;
        file.write_all(&segment_header(seq))
            .map_err(|e| io_err("write wal segment header", e))?;
        file.sync_all()
            .map_err(|e| io_err("sync new wal segment", e))?;
        stats.record_fsync();
        sync_dir(dir, &stats)?;
        Ok(Wal {
            dir: dir.to_path_buf(),
            stats,
            segment_bytes,
            file,
            seq,
            written: SEG_HEADER_LEN,
        })
    }

    /// The durability directory this WAL lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active segment's sequence number.
    pub fn active_segment(&self) -> u64 {
        self.seq
    }

    /// Payload bytes appended to the active segment so far.
    pub fn active_segment_bytes(&self) -> u64 {
        self.written
    }

    /// Append a group-commit batch: every record framed and written in
    /// one `write_all`, made durable with one `fdatasync`. Returns only
    /// after the batch is on disk — the caller (a group-commit leader
    /// holding the engine write lock) may then publish the installs.
    pub fn append_batch(&mut self, payloads: &[Vec<u8>]) -> DtResult<()> {
        if payloads.is_empty() {
            return Ok(());
        }
        let payload_bytes: usize = payloads.iter().map(|p| p.len()).sum();
        let mut buf =
            Vec::with_capacity(payload_bytes + payloads.len() * FRAME_HEADER_LEN as usize);
        for p in payloads {
            debug_assert!(p.len() as u64 <= MAX_RECORD_BYTES as u64);
            buf.extend_from_slice(&(p.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(p).to_le_bytes());
            buf.extend_from_slice(p);
        }
        self.file
            .write_all(&buf)
            .map_err(|e| io_err("append wal batch", e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync wal batch", e))?;
        self.written += buf.len() as u64;
        self.stats.record_batch(payloads.len(), payload_bytes);
        self.stats.record_fsync();
        if self.written >= self.segment_bytes {
            self.roll()?;
        }
        Ok(())
    }

    /// Seal the active segment and start a fresh one. The old segment is
    /// fully synced before the new one becomes visible, which is what
    /// licenses recovery to treat sealed-segment corruption as fatal.
    pub fn roll(&mut self) -> DtResult<()> {
        self.file
            .sync_all()
            .map_err(|e| io_err("sync sealed wal segment", e))?;
        self.stats.record_fsync();
        let next = Wal::create_segment(
            &self.dir,
            Arc::clone(&self.stats),
            self.segment_bytes,
            self.seq + 1,
        )?;
        *self = next;
        Ok(())
    }

    /// Delete every sealed segment (sequence number below the active
    /// one). Called after a checkpoint installs: the checkpoint covers
    /// everything the sealed segments held.
    pub fn remove_sealed_segments(&mut self) -> DtResult<usize> {
        let mut removed = 0;
        for (seq, path) in list_segments(&self.dir)? {
            if seq < self.seq {
                fs::remove_file(&path).map_err(|e| io_err("remove sealed wal segment", e))?;
                removed += 1;
            }
        }
        if removed > 0 {
            sync_dir(&self.dir, &self.stats)?;
        }
        Ok(removed)
    }

    /// The shared stats counters.
    pub fn stats(&self) -> &Arc<WalStats> {
        &self.stats
    }
}

struct ScanEnd {
    /// Byte offset just past the last intact record.
    offset: u64,
    /// Whether the segment ended with a torn/corrupt frame.
    torn: bool,
}

/// Scan one segment, pushing intact payloads onto `out`. For the final
/// segment a bad frame ends the scan (torn tail); for sealed segments it
/// is corruption.
fn scan_segment(
    path: &Path,
    expect_seq: u64,
    is_final: bool,
    out: &mut Vec<Vec<u8>>,
) -> DtResult<ScanEnd> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| io_err("read wal segment", e))?;

    let name = path.display();
    let corrupt = |msg: String| -> DtError { DtError::Corruption(format!("{name}: {msg}")) };

    if bytes.len() < SEG_HEADER_LEN as usize {
        if is_final {
            // Crashed during segment creation: header never hit disk.
            return Ok(ScanEnd { offset: SEG_HEADER_LEN, torn: true });
        }
        return Err(corrupt(format!("sealed segment is {} byte(s)", bytes.len())));
    }
    if &bytes[0..4] != SEG_MAGIC {
        return Err(corrupt("bad segment magic".into()));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != SEG_VERSION {
        return Err(corrupt(format!("unsupported segment version {version}")));
    }
    let seq = u64::from_le_bytes(bytes[6..14].try_into().unwrap());
    if seq != expect_seq {
        return Err(corrupt(format!(
            "segment header claims sequence {seq}, filename says {expect_seq}"
        )));
    }

    let mut pos = SEG_HEADER_LEN as usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(ScanEnd { offset: pos as u64, torn: false });
        }
        let bad = |what: &str| -> DtResult<ScanEnd> {
            if is_final {
                Ok(ScanEnd { offset: pos as u64, torn: true })
            } else {
                Err(corrupt(format!("{what} at offset {pos} in sealed segment")))
            }
        };
        if remaining < FRAME_HEADER_LEN as usize {
            return bad("torn frame header");
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            return bad("implausible record length");
        }
        let body_start = pos + FRAME_HEADER_LEN as usize;
        if bytes.len() - body_start < len as usize {
            return bad("torn record body");
        }
        let payload = &bytes[body_start..body_start + len as usize];
        if crc32(payload) != crc {
            return bad("record CRC mismatch");
        }
        out.push(payload.to_vec());
        pos = body_start + len as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir::TestDir;

    fn rec(n: usize, fill: u8) -> Vec<u8> {
        vec![fill; n]
    }

    fn open(dir: &Path) -> (Wal, Recovered) {
        Wal::open(dir, Arc::new(WalStats::default())).unwrap()
    }

    #[test]
    fn round_trips_across_reopen() {
        let td = TestDir::new("wal-roundtrip");
        {
            let (mut wal, rec0) = open(td.path());
            assert!(rec0.records.is_empty());
            wal.append_batch(&[rec(10, 1), rec(0, 0), rec(100, 2)]).unwrap();
            wal.append_batch(&[rec(5, 3)]).unwrap();
            let s = wal.stats().snapshot();
            assert_eq!((s.appends, s.batches), (4, 2));
            assert!(s.fsyncs >= 2 && s.bytes == 115);
        }
        let (_wal, recovered) = open(td.path());
        assert!(!recovered.truncated_tail);
        assert_eq!(
            recovered.records,
            vec![rec(10, 1), rec(0, 0), rec(100, 2), rec(5, 3)]
        );
    }

    #[test]
    fn torn_tail_truncated_at_every_cut_point() {
        let td = TestDir::new("wal-torn");
        let full_len = {
            let (mut wal, _) = open(td.path());
            wal.append_batch(&[rec(20, 7)]).unwrap();
            wal.append_batch(&[rec(30, 8)]).unwrap();
            std::fs::metadata(td.path().join("wal-00000001.seg")).unwrap().len()
        };
        let seg = td.path().join("wal-00000001.seg");
        let pristine = std::fs::read(&seg).unwrap();
        // Cut the file at every length from empty to full; recovery must
        // open cleanly every time and keep exactly the records whose
        // frames survived intact.
        for cut in 0..=full_len {
            std::fs::write(&seg, &pristine[..cut as usize]).unwrap();
            let (_wal, recovered) = open(td.path());
            let n = recovered.records.len();
            assert!(n <= 2, "cut {cut}: {n} records");
            if cut >= full_len {
                assert_eq!(n, 2);
            } else if cut >= SEG_HEADER_LEN + 8 + 20 + 8 + 30 {
                assert_eq!(n, 2, "cut {cut}");
            } else if cut >= SEG_HEADER_LEN + 8 + 20 {
                assert_eq!(n, 1, "cut {cut}");
            } else {
                assert_eq!(n, 0, "cut {cut}");
            }
            // After truncation the log must accept appends again.
            let (mut wal, _) = open(td.path());
            wal.append_batch(&[rec(3, 9)]).unwrap();
            let (_w, r2) = open(td.path());
            assert_eq!(r2.records.len(), n + 1);
            // Restore for the next iteration.
            std::fs::write(&seg, &pristine).unwrap();
        }
    }

    #[test]
    fn bit_flip_in_tail_is_detected_and_truncated() {
        let td = TestDir::new("wal-flip");
        {
            let (mut wal, _) = open(td.path());
            wal.append_batch(&[rec(40, 1)]).unwrap();
            wal.append_batch(&[rec(40, 2)]).unwrap();
        }
        let seg = td.path().join("wal-00000001.seg");
        let mut bytes = std::fs::read(&seg).unwrap();
        // Flip a bit inside the second record's payload.
        let second_payload = SEG_HEADER_LEN as usize + 8 + 40 + 8 + 5;
        bytes[second_payload] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();
        let (_wal, recovered) = open(td.path());
        assert!(recovered.truncated_tail);
        assert_eq!(recovered.records, vec![rec(40, 1)]);
    }

    #[test]
    fn corruption_in_sealed_segment_is_fatal() {
        let td = TestDir::new("wal-sealed");
        {
            let (mut wal, _) =
                Wal::open_with_segment_bytes(td.path(), Arc::new(WalStats::default()), 64)
                    .unwrap();
            wal.append_batch(&[rec(100, 1)]).unwrap(); // rolls: 100 > 64
            wal.append_batch(&[rec(10, 2)]).unwrap();
            assert_eq!(wal.active_segment(), 2);
        }
        let seg1 = td.path().join("wal-00000001.seg");
        let mut bytes = std::fs::read(&seg1).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        std::fs::write(&seg1, &bytes).unwrap();
        let err = Wal::open(td.path(), Arc::new(WalStats::default())).unwrap_err();
        assert!(matches!(err, DtError::Corruption(_)), "{err:?}");
    }

    #[test]
    fn roll_and_remove_sealed_segments() {
        let td = TestDir::new("wal-roll");
        let (mut wal, _) =
            Wal::open_with_segment_bytes(td.path(), Arc::new(WalStats::default()), 32).unwrap();
        for i in 0..5 {
            wal.append_batch(&[rec(40, i)]).unwrap();
        }
        assert!(wal.active_segment() >= 5);
        let removed = wal.remove_sealed_segments().unwrap();
        assert_eq!(removed, wal.active_segment() as usize - 1);
        // Only the (empty) active segment remains; recovery sees no records.
        let (_w, recovered) = open(td.path());
        assert!(recovered.records.is_empty());
    }

    #[test]
    fn one_fsync_per_batch() {
        let td = TestDir::new("wal-fsync");
        let (mut wal, _) = open(td.path());
        let before = wal.stats().snapshot().fsyncs;
        for _ in 0..10 {
            wal.append_batch(&[rec(8, 1), rec(8, 2), rec(8, 3)]).unwrap();
        }
        let s = wal.stats().snapshot();
        assert_eq!(s.fsyncs - before, 10);
        assert_eq!(s.appends, 30);
        assert_eq!(s.batches, 10);
    }
}
