//! WAL telemetry counters, surfaced through `SHOW STATS` and the wire
//! protocol's `ServerStats`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters shared between the WAL appender and stats readers.
/// Updated with relaxed atomics — these are observability counters, not
/// synchronization; the durability ordering comes from the fsyncs.
#[derive(Debug, Default)]
pub struct WalStats {
    /// Records appended.
    pub appends: AtomicU64,
    /// `append_batch` calls (each is one group-commit batch).
    pub batches: AtomicU64,
    /// fsync/fdatasync calls issued (WAL segments, checkpoint files, and
    /// directory syncs alike).
    pub fsyncs: AtomicU64,
    /// Payload bytes appended (excluding frame headers).
    pub bytes: AtomicU64,
    /// Checkpoints installed.
    pub checkpoints: AtomicU64,
    /// Records replayed past the checkpoint watermark at the most recent
    /// recovery.
    pub recovery_replayed: AtomicU64,
}

/// A point-in-time copy of [`WalStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStatsSnapshot {
    /// Records appended.
    pub appends: u64,
    /// Group-commit batches appended.
    pub batches: u64,
    /// fsync calls issued.
    pub fsyncs: u64,
    /// Payload bytes appended.
    pub bytes: u64,
    /// Checkpoints installed.
    pub checkpoints: u64,
    /// Records replayed at the most recent recovery.
    pub recovery_replayed: u64,
}

impl WalStats {
    /// Snapshot every counter.
    pub fn snapshot(&self) -> WalStatsSnapshot {
        WalStatsSnapshot {
            appends: self.appends.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            recovery_replayed: self.recovery_replayed.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record_batch(&self, records: usize, payload_bytes: usize) {
        self.appends.fetch_add(records as u64, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(payload_bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_fsync(&self) {
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Record how many WAL records recovery replayed past the checkpoint
    /// watermark. Called by the engine's recovery path, which owns the
    /// replay loop (only the file layer lives in this crate).
    pub fn record_recovery(&self, records: u64) {
        self.recovery_replayed.store(records, Ordering::Relaxed);
    }
}
