//! Length-prefixed framing over a byte stream.
//!
//! Every message travels as one frame:
//!
//! ```text
//! +----------------+=====================+
//! | len: u32 (LE)  |  payload: len bytes |
//! +----------------+=====================+
//! ```
//!
//! The length counts only the payload. Both sides enforce a configurable
//! cap *before* allocating or reading the payload, so a hostile or
//! corrupt length prefix costs four bytes of inspection, not memory.
//!
//! Two read paths are provided:
//!
//! * [`read_frame`] — simple blocking read for clients (one in-flight
//!   request; the process is happy to block on the response).
//! * [`FrameReader`] — an incremental accumulator for servers: feed it
//!   whatever bytes the socket yields (including short reads and
//!   timeout-induced empty reads) and it hands back complete payloads.
//!   This is what makes per-connection idle timeouts and graceful
//!   shutdown checks possible without losing partial frames: the caller
//!   polls with a short socket timeout and keeps state between polls.

use std::io::{self, Read, Write};

/// Default cap on one frame's payload (16 MiB). Generous for result
/// sets, small enough that a corrupted length prefix cannot OOM anyone.
pub const DEFAULT_MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Why a frame could not be produced.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed (includes EOF mid-frame as
    /// `UnexpectedEof`).
    Io(io::Error),
    /// The peer announced a payload larger than the configured cap.
    TooLarge {
        /// The announced payload length.
        len: u32,
        /// The configured cap.
        max: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame length {len} exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame: 4-byte little-endian payload length, then the
/// payload. Flushes, so a following blocking read observes the frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Blocking read of one frame. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed between messages); EOF *inside* a
/// frame is an error.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header);
    if len > max_len {
        return Err(FrameError::TooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame payload",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(payload))
}

/// What one [`FrameReader::poll`] call produced.
#[derive(Debug, PartialEq, Eq)]
pub enum Poll {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// No complete frame yet (short read or read timeout); call again.
    Pending,
    /// The peer closed cleanly at a frame boundary.
    Closed,
}

/// Incremental frame accumulator: survives short reads and read
/// timeouts without losing buffered bytes, which `Read::read_exact`
/// cannot promise. One instance per connection.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty accumulator.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Bytes buffered but not yet assembled into a frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// If the buffer already holds a complete frame, detach and return
    /// it without touching the stream.
    fn take_buffered_frame(&mut self, max_len: u32) -> Result<Option<Vec<u8>>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        if len > max_len {
            return Err(FrameError::TooLarge { len, max: max_len });
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }

    /// Read whatever the stream has (one `read` call at most) and return
    /// a complete frame if one is now buffered. Timeout-shaped errors
    /// (`WouldBlock` / `TimedOut`) surface as [`Poll::Pending`] so the
    /// caller can run its idle/shutdown checks and poll again; partial
    /// frame bytes stay buffered across calls.
    pub fn poll(&mut self, r: &mut impl Read, max_len: u32) -> Result<Poll, FrameError> {
        // Drain already-buffered frames first: one read may deliver
        // several pipelined requests.
        if let Some(frame) = self.take_buffered_frame(max_len)? {
            return Ok(Poll::Frame(frame));
        }
        let mut chunk = [0u8; 8 * 1024];
        match r.read(&mut chunk) {
            Ok(0) => {
                if self.buf.is_empty() {
                    Ok(Poll::Closed)
                } else {
                    Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside frame",
                    )))
                }
            }
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                match self.take_buffered_frame(max_len)? {
                    Some(frame) => Ok(Poll::Frame(frame)),
                    None => Ok(Poll::Pending),
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted =>
            {
                Ok(Poll::Pending)
            }
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trips() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut cur = Cursor::new(wire);
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN).unwrap().as_deref(),
            Some(&b"hello"[..])
        );
        assert_eq!(
            read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert_eq!(read_frame(&mut cur, DEFAULT_MAX_FRAME_LEN).unwrap(), None);
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(b"junk");
        let mut cur = Cursor::new(wire);
        match read_frame(&mut cur, 1024) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn eof_inside_frame_is_an_error() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&10u32.to_le_bytes());
        wire.extend_from_slice(b"abc"); // 3 of 10 payload bytes
        let mut cur = Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(FrameError::Io(_))
        ));
        // And a torn header, too.
        let mut cur = Cursor::new(vec![1u8, 0]);
        assert!(matches!(
            read_frame(&mut cur, 1024),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn frame_reader_assembles_across_fragmented_reads() {
        // A reader that yields one byte per read call.
        struct OneByte(Cursor<Vec<u8>>);
        impl Read for OneByte {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = 1.min(buf.len());
                self.0.read(&mut buf[..n])
            }
        }
        let mut wire = Vec::new();
        write_frame(&mut wire, b"fragmented").unwrap();
        let mut src = OneByte(Cursor::new(wire));
        let mut fr = FrameReader::new();
        let mut out = None;
        for _ in 0..64 {
            match fr.poll(&mut src, 1024).unwrap() {
                Poll::Frame(f) => {
                    out = Some(f);
                    break;
                }
                Poll::Pending => {}
                Poll::Closed => panic!("closed early"),
            }
        }
        assert_eq!(out.as_deref(), Some(&b"fragmented"[..]));
    }

    #[test]
    fn frame_reader_drains_pipelined_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"one").unwrap();
        write_frame(&mut wire, b"two").unwrap();
        let mut cur = Cursor::new(wire);
        let mut fr = FrameReader::new();
        assert_eq!(fr.poll(&mut cur, 1024).unwrap(), Poll::Frame(b"one".to_vec()));
        // The second frame is already buffered: no stream read needed.
        assert_eq!(fr.poll(&mut cur, 1024).unwrap(), Poll::Frame(b"two".to_vec()));
        assert_eq!(fr.poll(&mut cur, 1024).unwrap(), Poll::Closed);
    }

    #[test]
    fn frame_reader_rejects_oversized_prefix() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(2048u32).to_le_bytes());
        let mut cur = Cursor::new(wire);
        let mut fr = FrameReader::new();
        assert!(matches!(
            fr.poll(&mut cur, 1024),
            Err(FrameError::TooLarge { len: 2048, max: 1024 })
        ));
    }

    #[test]
    fn frame_reader_reports_torn_eof() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&8u32.to_le_bytes());
        wire.extend_from_slice(b"abc");
        let mut cur = Cursor::new(wire);
        let mut fr = FrameReader::new();
        loop {
            match fr.poll(&mut cur, 1024) {
                Ok(Poll::Pending) => continue,
                Ok(other) => panic!("expected torn EOF, got {other:?}"),
                Err(FrameError::Io(e)) => {
                    assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
                    break;
                }
                Err(other) => panic!("unexpected {other:?}"),
            }
        }
    }
}
