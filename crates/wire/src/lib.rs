//! The wire protocol shared by `dt-server` and `dt-client`.
//!
//! The paper's system is a multi-tenant cloud service; this crate is the
//! contract that turns the in-process engine into one. It defines —
//! independently of both endpoints, so neither can drift — the three
//! layers of the protocol:
//!
//! 1. **Framing** ([`frame`]): every message is a length-prefixed frame
//!    (`u32` little-endian payload length, then the payload), with the
//!    length validated against a cap before any allocation.
//! 2. **Encoding** ([`codec`]): an explicit little-endian binary layout
//!    for the engine's data vocabulary — [`dt_common::Value`],
//!    [`dt_common::Schema`], [`dt_common::Row`], and every
//!    [`dt_common::DtError`] variant. Hand-rolled because the vendored
//!    `serde` is a no-op stand-in; the layout is documented for foreign
//!    clients in `docs/PROTOCOL.md`.
//! 3. **Messages** ([`message`]): a version-tagged handshake
//!    ([`Hello`]), request kinds ([`Request`]) covering the whole engine
//!    surface (queries, time travel, prepared statements with `?`
//!    parameters, `BEGIN`/`COMMIT`/`ROLLBACK`, telemetry, orderly
//!    close), and typed responses ([`Response`]) whose error channel
//!    ([`WireError`]) distinguishes engine errors (conflicts stay
//!    retryable — [`DtError::is_conflict`] works remotely), admission
//!    rejection (`ServerBusy`), protocol violations, and shutdown.
//!
//! Decoding never panics on malformed input: truncated frames, hostile
//! length prefixes, unknown tags, and garbage payloads all surface as
//! typed errors — property-tested here and exercised against live
//! sockets by the workspace's server robustness suite.
//!
//! [`DtError::is_conflict`]: dt_common::DtError::is_conflict

pub mod codec;
pub mod frame;
pub mod message;

pub use codec::{DecodeError, DecodeResult, Reader, Writer};
pub use frame::{
    read_frame, write_frame, FrameError, FrameReader, Poll, DEFAULT_MAX_FRAME_LEN,
};
pub use message::{
    Hello, RemoteRows, Request, Response, ServerStats, WireError, HELLO_MAGIC, PROTOCOL_VERSION,
};
