//! The protocol messages: handshake, requests, responses, typed errors.
//!
//! Layouts follow the [`crate::codec`] conventions (little-endian
//! scalars, length-prefixed strings/sequences, one-byte enum tags) and
//! are documented byte-for-byte in `docs/PROTOCOL.md`.

use std::sync::Arc;

use dt_common::{DtError, Row, Schema, Timestamp, Value};

use crate::codec::{
    get_row, get_rows, get_schema, get_values, put_row, put_rows, put_schema, put_values,
    DecodeResult, Reader, Writer,
};

/// The protocol version this crate speaks. Bumped on any layout change;
/// the handshake rejects mismatches with a typed error so old clients
/// fail loud, not weird.
pub const PROTOCOL_VERSION: u16 = 1;

/// The 4-byte magic opening every client hello: `b"DTWP"` (Dynamic
/// Tables Wire Protocol). Lets the server reject a peer that is not
/// speaking this protocol at all before trusting any further bytes.
pub const HELLO_MAGIC: [u8; 4] = *b"DTWP";

/// The client's first frame: magic plus the protocol version it speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version the client proposes ([`PROTOCOL_VERSION`]).
    pub version: u16,
}

impl Hello {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_raw(&HELLO_MAGIC);
        w.put_u16(self.version);
        w.into_bytes()
    }

    /// Decode a frame payload. Checks the magic but *not* the version —
    /// version policy belongs to the server, which answers a bad version
    /// with a typed error rather than a closed socket.
    pub fn decode(payload: &[u8]) -> DecodeResult<Hello> {
        let mut r = Reader::new(payload);
        let mut magic = [0u8; 4];
        for b in &mut magic {
            *b = r.get_u8()?;
        }
        if magic != HELLO_MAGIC {
            return Err(crate::codec::DecodeError(format!(
                "bad hello magic {magic:02x?} (expected {HELLO_MAGIC:02x?})"
            )));
        }
        let version = r.get_u16()?;
        r.finish()?;
        Ok(Hello { version })
    }
}

/// One client request. Every variant gets exactly one [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one SQL statement (query, DML, DDL, or transaction control —
    /// the server answers with whatever the statement produces).
    Query { sql: String },
    /// Time-travel query: run `sql` against the state as of `at`.
    QueryAt { sql: String, at: Timestamp },
    /// Prepare a statement; the response carries a connection-scoped id.
    Prepare { sql: String },
    /// Execute a previously prepared statement with positional `?`
    /// parameter bindings.
    ExecutePrepared { id: u64, params: Vec<Value> },
    /// Open a transaction on this connection's session.
    Begin,
    /// Commit the connection's open transaction.
    Commit,
    /// Roll back the connection's open transaction.
    Rollback,
    /// Engine + server telemetry (the typed twin of `SHOW STATS`).
    Stats,
    /// Orderly goodbye: the server answers [`Response::Goodbye`] and
    /// closes. Any open transaction rolls back.
    Close,
}

const REQ_QUERY: u8 = 0;
const REQ_QUERY_AT: u8 = 1;
const REQ_PREPARE: u8 = 2;
const REQ_EXECUTE_PREPARED: u8 = 3;
const REQ_BEGIN: u8 = 4;
const REQ_COMMIT: u8 = 5;
const REQ_ROLLBACK: u8 = 6;
const REQ_STATS: u8 = 7;
const REQ_CLOSE: u8 = 8;

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Query { sql } => {
                w.put_u8(REQ_QUERY);
                w.put_str(sql);
            }
            Request::QueryAt { sql, at } => {
                w.put_u8(REQ_QUERY_AT);
                w.put_str(sql);
                w.put_i64(at.as_micros());
            }
            Request::Prepare { sql } => {
                w.put_u8(REQ_PREPARE);
                w.put_str(sql);
            }
            Request::ExecutePrepared { id, params } => {
                w.put_u8(REQ_EXECUTE_PREPARED);
                w.put_u64(*id);
                put_values(&mut w, params);
            }
            Request::Begin => w.put_u8(REQ_BEGIN),
            Request::Commit => w.put_u8(REQ_COMMIT),
            Request::Rollback => w.put_u8(REQ_ROLLBACK),
            Request::Stats => w.put_u8(REQ_STATS),
            Request::Close => w.put_u8(REQ_CLOSE),
        }
        w.into_bytes()
    }

    /// Decode a frame payload (strict: trailing bytes are malformed).
    pub fn decode(payload: &[u8]) -> DecodeResult<Request> {
        let mut r = Reader::new(payload);
        let req = match r.get_u8()? {
            REQ_QUERY => Request::Query { sql: r.get_str()? },
            REQ_QUERY_AT => Request::QueryAt {
                sql: r.get_str()?,
                at: Timestamp::from_micros(r.get_i64()?),
            },
            REQ_PREPARE => Request::Prepare { sql: r.get_str()? },
            REQ_EXECUTE_PREPARED => Request::ExecutePrepared {
                id: r.get_u64()?,
                params: get_values(&mut r)?,
            },
            REQ_BEGIN => Request::Begin,
            REQ_COMMIT => Request::Commit,
            REQ_ROLLBACK => Request::Rollback,
            REQ_STATS => Request::Stats,
            REQ_CLOSE => Request::Close,
            tag => {
                return Err(crate::codec::DecodeError(format!(
                    "unknown request tag {tag:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok(req)
    }
}

/// A query result shipped over the wire: schema plus rows. The remote
/// twin of `dt_core::QueryResult`, defined here so `dt-client` needs no
/// engine dependency.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteRows {
    schema: Arc<Schema>,
    rows: Vec<Row>,
}

impl RemoteRows {
    /// Build from a schema and rows.
    pub fn new(schema: Arc<Schema>, rows: Vec<Row>) -> Self {
        RemoteRows { schema, rows }
    }

    /// The output schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Borrow the rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Consume into the row vector.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Consume into sorted rows (deterministic comparisons in tests).
    pub fn into_sorted_rows(self) -> Vec<Row> {
        let mut rows = self.rows;
        rows.sort();
        rows
    }
}

impl<'a> IntoIterator for &'a RemoteRows {
    type Item = &'a Row;
    type IntoIter = std::slice::Iter<'a, Row>;
    fn into_iter(self) -> Self::IntoIter {
        self.rows.iter()
    }
}

/// Engine + server telemetry, answered to [`Request::Stats`] (and, as
/// `name`/`value` rows, to the SQL text `SHOW STATS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections currently open (including the one asking).
    pub active_connections: u64,
    /// Connections accepted since the server started.
    pub total_connections: u64,
    /// Connections rejected by admission control ([`WireError::ServerBusy`]).
    pub rejected_connections: u64,
    /// Requests served across all connections.
    pub requests_served: u64,
    /// Transactions currently active in the engine's transaction manager.
    pub active_txns: u64,
    /// Committed transactions (engine commit pipeline).
    pub commits: u64,
    /// Serialization-conflict aborts (engine commit pipeline).
    pub conflicts: u64,
    /// Engine-write-lock acquisitions spent installing commits.
    pub install_lock_acquisitions: u64,
    /// Largest group-commit batch installed under one acquisition.
    pub max_batch: u64,
    /// Commits that rode the group-commit queue.
    pub group_submitted: u64,
    /// Partitions skipped by zone-map pruning across all scans.
    pub zone_map_pruned: u64,
    /// Refreshes recorded by the engine (serial and parallel alike).
    pub refreshes: u64,
    /// Engine-write-lock acquisitions spent group-installing refreshes.
    pub refresh_batches: u64,
    /// Worker-pool size for parallel refresh rounds.
    pub refresh_workers: u64,
    /// WAL records appended (zero when running in memory).
    pub wal_appends: u64,
    /// WAL group-commit batches appended.
    pub wal_batches: u64,
    /// WAL fsync calls issued (at most one per batch).
    pub wal_fsyncs: u64,
    /// WAL payload bytes appended.
    pub wal_bytes: u64,
    /// Checkpoints installed (manual and automatic).
    pub checkpoints: u64,
    /// WAL records replayed by the most recent recovery.
    pub recovery_replayed: u64,
    /// Times a transaction blocked on a pessimistic table-lock wait-queue.
    pub lock_waits: u64,
    /// Total microseconds spent blocked on pessimistic lock waits.
    pub lock_wait_time_us: u64,
    /// Lock waits that gave up after the configured timeout.
    pub lock_timeouts: u64,
    /// Deadlocks detected (victim aborted with `DtError::Deadlock`).
    pub deadlocks: u64,
    /// Tables currently running in pessimistic locking mode.
    pub tables_pessimistic: u64,
    /// Adaptive optimistic↔pessimistic mode flips since startup.
    pub adaptive_flips: u64,
}

impl ServerStats {
    /// The stats as `(name, value)` pairs — the row form `SHOW STATS`
    /// returns, and the single source of truth for its field order.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("active_connections", self.active_connections),
            ("total_connections", self.total_connections),
            ("rejected_connections", self.rejected_connections),
            ("requests_served", self.requests_served),
            ("active_txns", self.active_txns),
            ("commits", self.commits),
            ("conflicts", self.conflicts),
            ("install_lock_acquisitions", self.install_lock_acquisitions),
            ("max_batch", self.max_batch),
            ("group_submitted", self.group_submitted),
            ("zone_map_pruned", self.zone_map_pruned),
            ("refreshes", self.refreshes),
            ("refresh_batches", self.refresh_batches),
            ("refresh_workers", self.refresh_workers),
            ("wal_appends", self.wal_appends),
            ("wal_batches", self.wal_batches),
            ("wal_fsyncs", self.wal_fsyncs),
            ("wal_bytes", self.wal_bytes),
            ("checkpoints", self.checkpoints),
            ("recovery_replayed", self.recovery_replayed),
            ("lock_waits", self.lock_waits),
            ("lock_wait_time_us", self.lock_wait_time_us),
            ("lock_timeouts", self.lock_timeouts),
            ("deadlocks", self.deadlocks),
            ("tables_pessimistic", self.tables_pessimistic),
            ("adaptive_flips", self.adaptive_flips),
        ]
    }

    /// Rebuild from `(name, value)` pairs; unknown names are ignored so
    /// newer servers can add fields without breaking older clients.
    pub fn from_fields<'a>(fields: impl IntoIterator<Item = (&'a str, u64)>) -> ServerStats {
        let mut s = ServerStats::default();
        for (name, v) in fields {
            match name {
                "active_connections" => s.active_connections = v,
                "total_connections" => s.total_connections = v,
                "rejected_connections" => s.rejected_connections = v,
                "requests_served" => s.requests_served = v,
                "active_txns" => s.active_txns = v,
                "commits" => s.commits = v,
                "conflicts" => s.conflicts = v,
                "install_lock_acquisitions" => s.install_lock_acquisitions = v,
                "max_batch" => s.max_batch = v,
                "group_submitted" => s.group_submitted = v,
                "zone_map_pruned" => s.zone_map_pruned = v,
                "refreshes" => s.refreshes = v,
                "refresh_batches" => s.refresh_batches = v,
                "refresh_workers" => s.refresh_workers = v,
                "wal_appends" => s.wal_appends = v,
                "wal_batches" => s.wal_batches = v,
                "wal_fsyncs" => s.wal_fsyncs = v,
                "wal_bytes" => s.wal_bytes = v,
                "checkpoints" => s.checkpoints = v,
                "recovery_replayed" => s.recovery_replayed = v,
                "lock_waits" => s.lock_waits = v,
                "lock_wait_time_us" => s.lock_wait_time_us = v,
                "lock_timeouts" => s.lock_timeouts = v,
                "deadlocks" => s.deadlocks = v,
                "tables_pessimistic" => s.tables_pessimistic = v,
                "adaptive_flips" => s.adaptive_flips = v,
                _ => {}
            }
        }
        s
    }

    fn put(&self, w: &mut Writer) {
        let fields = self.fields();
        w.put_len(fields.len());
        for (name, v) in fields {
            w.put_str(name);
            w.put_u64(v);
        }
    }

    fn get(r: &mut Reader<'_>) -> DecodeResult<ServerStats> {
        // Each field is at least a 4-byte name length + 8-byte value.
        let n = r.get_len(12)?;
        let mut fields = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.get_str()?;
            let v = r.get_u64()?;
            fields.push((name, v));
        }
        Ok(ServerStats::from_fields(
            fields.iter().map(|(n, v)| (n.as_str(), *v)),
        ))
    }
}

/// A typed protocol-level failure, distinct from engine errors so remote
/// callers can program against each class: engine errors (including
/// retryable [`DtError::Conflict`]) leave the connection usable,
/// [`WireError::ServerBusy`] says "come back later", and protocol
/// violations mean the stream can no longer be trusted.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The engine rejected the statement; the connection stays usable.
    /// Conflicts arrive here as `DtError::Conflict`, so remote retry
    /// loops classify exactly like local ones.
    Engine(DtError),
    /// Admission control: the server is at its connection limit.
    ServerBusy {
        /// Connections currently active.
        active: u32,
        /// The configured limit.
        limit: u32,
    },
    /// The peer violated the framing or message layout; the server
    /// answers (when the framing still permits) and closes.
    Protocol(String),
    /// The server is draining for shutdown.
    ShuttingDown,
}

const ERR_ENGINE: u8 = 0;
const ERR_BUSY: u8 = 1;
const ERR_PROTOCOL: u8 = 2;
const ERR_SHUTTING_DOWN: u8 = 3;

impl WireError {
    /// True when this is a retryable engine serialization conflict.
    pub fn is_conflict(&self) -> bool {
        matches!(self, WireError::Engine(e) if e.is_conflict())
    }

    fn put(&self, w: &mut Writer) {
        match self {
            WireError::Engine(e) => {
                w.put_u8(ERR_ENGINE);
                put_dt_error(w, e);
            }
            WireError::ServerBusy { active, limit } => {
                w.put_u8(ERR_BUSY);
                w.put_u32(*active);
                w.put_u32(*limit);
            }
            WireError::Protocol(m) => {
                w.put_u8(ERR_PROTOCOL);
                w.put_str(m);
            }
            WireError::ShuttingDown => w.put_u8(ERR_SHUTTING_DOWN),
        }
    }

    fn get(r: &mut Reader<'_>) -> DecodeResult<WireError> {
        Ok(match r.get_u8()? {
            ERR_ENGINE => WireError::Engine(get_dt_error(r)?),
            ERR_BUSY => WireError::ServerBusy {
                active: r.get_u32()?,
                limit: r.get_u32()?,
            },
            ERR_PROTOCOL => WireError::Protocol(r.get_str()?),
            ERR_SHUTTING_DOWN => WireError::ShuttingDown,
            tag => {
                return Err(crate::codec::DecodeError(format!(
                    "unknown error tag {tag:#04x}"
                )))
            }
        })
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Engine(e) => write!(f, "{e}"),
            WireError::ServerBusy { active, limit } => {
                write!(f, "server busy: {active}/{limit} connections in use")
            }
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
            WireError::ShuttingDown => write!(f, "server shutting down"),
        }
    }
}

impl std::error::Error for WireError {}

/// One server response. Mirrors `dt_core::ExecResult` plus the
/// protocol-only outcomes (handshake, prepared handles, stats, errors).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted; the version the server will speak.
    Hello { version: u16 },
    /// DDL/utility success message.
    Ok(String),
    /// DML row count.
    Count(u64),
    /// Query rows with their schema.
    Rows(RemoteRows),
    /// A prepared statement handle: connection-scoped id plus the number
    /// of `?` parameters the statement expects.
    Prepared { id: u64, params: u16 },
    /// Telemetry snapshot.
    Stats(ServerStats),
    /// The request failed. Engine errors leave the connection usable.
    Err(WireError),
    /// Orderly close acknowledgment; the server closes after sending.
    Goodbye,
}

const RESP_HELLO: u8 = 0;
const RESP_OK: u8 = 1;
const RESP_COUNT: u8 = 2;
const RESP_ROWS: u8 = 3;
const RESP_PREPARED: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_ERR: u8 = 6;
const RESP_GOODBYE: u8 = 7;

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Hello { version } => {
                w.put_u8(RESP_HELLO);
                w.put_u16(*version);
            }
            Response::Ok(m) => {
                w.put_u8(RESP_OK);
                w.put_str(m);
            }
            Response::Count(n) => {
                w.put_u8(RESP_COUNT);
                w.put_u64(*n);
            }
            Response::Rows(rows) => {
                w.put_u8(RESP_ROWS);
                put_schema(&mut w, rows.schema());
                put_rows(&mut w, rows.rows());
            }
            Response::Prepared { id, params } => {
                w.put_u8(RESP_PREPARED);
                w.put_u64(*id);
                w.put_u16(*params);
            }
            Response::Stats(s) => {
                w.put_u8(RESP_STATS);
                s.put(&mut w);
            }
            Response::Err(e) => {
                w.put_u8(RESP_ERR);
                e.put(&mut w);
            }
            Response::Goodbye => w.put_u8(RESP_GOODBYE),
        }
        w.into_bytes()
    }

    /// Decode a frame payload (strict: trailing bytes are malformed).
    pub fn decode(payload: &[u8]) -> DecodeResult<Response> {
        let mut r = Reader::new(payload);
        let resp = match r.get_u8()? {
            RESP_HELLO => Response::Hello {
                version: r.get_u16()?,
            },
            RESP_OK => Response::Ok(r.get_str()?),
            RESP_COUNT => Response::Count(r.get_u64()?),
            RESP_ROWS => {
                let schema = Arc::new(get_schema(&mut r)?);
                let rows = get_rows(&mut r)?;
                for (i, row) in rows.iter().enumerate() {
                    if row.len() != schema.len() {
                        return Err(crate::codec::DecodeError(format!(
                            "row {i} has {} value(s), schema has {} column(s)",
                            row.len(),
                            schema.len()
                        )));
                    }
                }
                Response::Rows(RemoteRows::new(schema, rows))
            }
            RESP_PREPARED => Response::Prepared {
                id: r.get_u64()?,
                params: r.get_u16()?,
            },
            RESP_STATS => Response::Stats(ServerStats::get(&mut r)?),
            RESP_ERR => Response::Err(WireError::get(&mut r)?),
            RESP_GOODBYE => Response::Goodbye,
            tag => {
                return Err(crate::codec::DecodeError(format!(
                    "unknown response tag {tag:#04x}"
                )))
            }
        };
        r.finish()?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------------
// DtError over the wire: every variant round-trips so remote callers see
// the same typed errors local ones do.
// ---------------------------------------------------------------------------

const DTERR_LEX: u8 = 0;
const DTERR_PARSE: u8 = 1;
const DTERR_BINDING: u8 = 2;
const DTERR_UNSUPPORTED: u8 = 3;
const DTERR_TYPE: u8 = 4;
const DTERR_EVALUATION: u8 = 5;
const DTERR_CATALOG: u8 = 6;
const DTERR_ACCESS_DENIED: u8 = 7;
const DTERR_STORAGE: u8 = 8;
const DTERR_TXN: u8 = 9;
const DTERR_CONFLICT: u8 = 10;
const DTERR_NOT_INITIALIZED: u8 = 11;
const DTERR_SUSPENDED: u8 = 12;
const DTERR_VERSION_NOT_FOUND: u8 = 13;
const DTERR_IVM_INVARIANT: u8 = 14;
const DTERR_INTERNAL: u8 = 15;
const DTERR_IO: u8 = 16;
const DTERR_CORRUPTION: u8 = 17;
const DTERR_DEADLOCK: u8 = 18;

/// Encode a [`DtError`].
pub fn put_dt_error(w: &mut Writer, e: &DtError) {
    match e {
        DtError::Lex { pos, message } => {
            w.put_u8(DTERR_LEX);
            w.put_u64(*pos as u64);
            w.put_str(message);
        }
        DtError::Parse { pos, message } => {
            w.put_u8(DTERR_PARSE);
            w.put_u64(*pos as u64);
            w.put_str(message);
        }
        DtError::Binding(m) => {
            w.put_u8(DTERR_BINDING);
            w.put_str(m);
        }
        DtError::Unsupported(m) => {
            w.put_u8(DTERR_UNSUPPORTED);
            w.put_str(m);
        }
        DtError::Type(m) => {
            w.put_u8(DTERR_TYPE);
            w.put_str(m);
        }
        DtError::Evaluation(m) => {
            w.put_u8(DTERR_EVALUATION);
            w.put_str(m);
        }
        DtError::Catalog(m) => {
            w.put_u8(DTERR_CATALOG);
            w.put_str(m);
        }
        DtError::AccessDenied { privilege, entity } => {
            w.put_u8(DTERR_ACCESS_DENIED);
            w.put_str(privilege);
            w.put_str(entity);
        }
        DtError::Storage(m) => {
            w.put_u8(DTERR_STORAGE);
            w.put_str(m);
        }
        DtError::Txn(m) => {
            w.put_u8(DTERR_TXN);
            w.put_str(m);
        }
        DtError::Conflict(m) => {
            w.put_u8(DTERR_CONFLICT);
            w.put_str(m);
        }
        DtError::NotInitialized(m) => {
            w.put_u8(DTERR_NOT_INITIALIZED);
            w.put_str(m);
        }
        DtError::Suspended(m) => {
            w.put_u8(DTERR_SUSPENDED);
            w.put_str(m);
        }
        DtError::VersionNotFound { entity, refresh_ts } => {
            w.put_u8(DTERR_VERSION_NOT_FOUND);
            w.put_str(entity);
            w.put_i64(*refresh_ts);
        }
        DtError::IvmInvariant(m) => {
            w.put_u8(DTERR_IVM_INVARIANT);
            w.put_str(m);
        }
        DtError::Internal(m) => {
            w.put_u8(DTERR_INTERNAL);
            w.put_str(m);
        }
        DtError::Io(m) => {
            w.put_u8(DTERR_IO);
            w.put_str(m);
        }
        DtError::Corruption(m) => {
            w.put_u8(DTERR_CORRUPTION);
            w.put_str(m);
        }
        DtError::Deadlock(m) => {
            w.put_u8(DTERR_DEADLOCK);
            w.put_str(m);
        }
    }
}

/// Decode a [`DtError`].
pub fn get_dt_error(r: &mut Reader<'_>) -> DecodeResult<DtError> {
    Ok(match r.get_u8()? {
        DTERR_LEX => DtError::Lex {
            pos: r.get_u64()? as usize,
            message: r.get_str()?,
        },
        DTERR_PARSE => DtError::Parse {
            pos: r.get_u64()? as usize,
            message: r.get_str()?,
        },
        DTERR_BINDING => DtError::Binding(r.get_str()?),
        DTERR_UNSUPPORTED => DtError::Unsupported(r.get_str()?),
        DTERR_TYPE => DtError::Type(r.get_str()?),
        DTERR_EVALUATION => DtError::Evaluation(r.get_str()?),
        DTERR_CATALOG => DtError::Catalog(r.get_str()?),
        DTERR_ACCESS_DENIED => DtError::AccessDenied {
            privilege: r.get_str()?,
            entity: r.get_str()?,
        },
        DTERR_STORAGE => DtError::Storage(r.get_str()?),
        DTERR_TXN => DtError::Txn(r.get_str()?),
        DTERR_CONFLICT => DtError::Conflict(r.get_str()?),
        DTERR_NOT_INITIALIZED => DtError::NotInitialized(r.get_str()?),
        DTERR_SUSPENDED => DtError::Suspended(r.get_str()?),
        DTERR_VERSION_NOT_FOUND => DtError::VersionNotFound {
            entity: r.get_str()?,
            refresh_ts: r.get_i64()?,
        },
        DTERR_IVM_INVARIANT => DtError::IvmInvariant(r.get_str()?),
        DTERR_INTERNAL => DtError::Internal(r.get_str()?),
        DTERR_IO => DtError::Io(r.get_str()?),
        DTERR_CORRUPTION => DtError::Corruption(r.get_str()?),
        DTERR_DEADLOCK => DtError::Deadlock(r.get_str()?),
        tag => {
            return Err(crate::codec::DecodeError(format!(
                "unknown DtError tag {tag:#04x}"
            )))
        }
    })
}

/// Decode a [`Row`] (re-exported for schema-shaped consumers).
pub fn decode_row(payload: &[u8]) -> DecodeResult<Row> {
    let mut r = Reader::new(payload);
    let row = get_row(&mut r)?;
    r.finish()?;
    Ok(row)
}

/// Encode a [`Row`] (round-trip helper for tests and tools).
pub fn encode_row(row: &Row) -> Vec<u8> {
    let mut w = Writer::new();
    put_row(&mut w, row);
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{Column, DataType};

    fn round_trip_request(req: Request) {
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn hello_round_trips_and_rejects_bad_magic() {
        let h = Hello {
            version: PROTOCOL_VERSION,
        };
        assert_eq!(Hello::decode(&h.encode()).unwrap(), h);
        let mut bytes = h.encode();
        bytes[0] = b'X';
        assert!(Hello::decode(&bytes).is_err());
        assert!(Hello::decode(&bytes[..3]).is_err());
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Query {
            sql: "SELECT 1".into(),
        });
        round_trip_request(Request::QueryAt {
            sql: "SELECT * FROM t".into(),
            at: Timestamp::from_secs(42),
        });
        round_trip_request(Request::Prepare {
            sql: "SELECT * FROM t WHERE k = ?".into(),
        });
        round_trip_request(Request::ExecutePrepared {
            id: 7,
            params: vec![Value::Int(1), Value::Null, Value::Str("x".into())],
        });
        round_trip_request(Request::Begin);
        round_trip_request(Request::Commit);
        round_trip_request(Request::Rollback);
        round_trip_request(Request::Stats);
        round_trip_request(Request::Close);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Hello { version: 1 });
        round_trip_response(Response::Ok("table created".into()));
        round_trip_response(Response::Count(99));
        let schema = Arc::new(Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("s", DataType::Str),
        ]));
        round_trip_response(Response::Rows(RemoteRows::new(
            schema,
            vec![
                Row::new(vec![Value::Int(1), Value::Str("a".into())]),
                Row::new(vec![Value::Int(2), Value::Null]),
            ],
        )));
        round_trip_response(Response::Prepared { id: 3, params: 2 });
        round_trip_response(Response::Stats(ServerStats {
            active_connections: 4,
            total_connections: 10,
            rejected_connections: 1,
            requests_served: 1234,
            active_txns: 2,
            commits: 55,
            conflicts: 3,
            install_lock_acquisitions: 20,
            max_batch: 4,
            group_submitted: 40,
            zone_map_pruned: 17,
            refreshes: 9,
            refresh_batches: 5,
            refresh_workers: 8,
            wal_appends: 120,
            wal_batches: 60,
            wal_fsyncs: 60,
            wal_bytes: 65536,
            checkpoints: 2,
            recovery_replayed: 11,
            lock_waits: 31,
            lock_wait_time_us: 420_000,
            lock_timeouts: 2,
            deadlocks: 1,
            tables_pessimistic: 3,
            adaptive_flips: 6,
        }));
        round_trip_response(Response::Goodbye);
    }

    #[test]
    fn every_dt_error_variant_round_trips() {
        let errors = vec![
            DtError::Lex {
                pos: 3,
                message: "bad char".into(),
            },
            DtError::Parse {
                pos: 9,
                message: "expected FROM".into(),
            },
            DtError::Binding("unknown column".into()),
            DtError::Unsupported("no window functions".into()),
            DtError::Type("INT vs STR".into()),
            DtError::Evaluation("division by zero".into()),
            DtError::Catalog("duplicate table".into()),
            DtError::AccessDenied {
                privilege: "SELECT".into(),
                entity: "t".into(),
            },
            DtError::Storage("missing version".into()),
            DtError::Txn("stray COMMIT".into()),
            DtError::Conflict("first committer wins".into()),
            DtError::NotInitialized("dt1".into()),
            DtError::Suspended("dt2".into()),
            DtError::VersionNotFound {
                entity: "orders".into(),
                refresh_ts: -5,
            },
            DtError::IvmInvariant("dup row id".into()),
            DtError::Internal("bug".into()),
            DtError::Io("fsync failed".into()),
            DtError::Corruption("bad record crc".into()),
            DtError::Deadlock("t1 waits on e2 held by t2".into()),
        ];
        for e in errors {
            let resp = Response::Err(WireError::Engine(e.clone()));
            let bytes = resp.encode();
            let back = Response::decode(&bytes).unwrap();
            let Response::Err(WireError::Engine(got)) = back else {
                panic!("wrong response shape for {e:?}");
            };
            assert_eq!(got, e);
            // Conflicts and deadlocks stay classifiable across the wire.
            assert_eq!(got.is_conflict(), e.is_conflict());
            assert_eq!(got.is_deadlock(), e.is_deadlock());
        }
    }

    #[test]
    fn wire_error_variants_round_trip() {
        for e in [
            WireError::ServerBusy {
                active: 8,
                limit: 8,
            },
            WireError::Protocol("oversized frame".into()),
            WireError::ShuttingDown,
        ] {
            let bytes = Response::Err(e.clone()).encode();
            assert_eq!(Response::decode(&bytes).unwrap(), Response::Err(e));
        }
    }

    #[test]
    fn rows_with_schema_mismatch_are_rejected() {
        let schema = Arc::new(Schema::new(vec![Column::new("k", DataType::Int)]));
        let resp = Response::Rows(RemoteRows::new(
            schema,
            vec![Row::new(vec![Value::Int(1), Value::Int(2)])],
        ));
        // Encoding is mechanical; the *decoder* enforces row arity.
        assert!(Response::decode(&resp.encode()).is_err());
    }

    #[test]
    fn stats_tolerate_unknown_fields() {
        let s = ServerStats {
            commits: 7,
            ..Default::default()
        };
        let mut fields: Vec<(&str, u64)> = s.fields();
        fields.push(("a_future_counter", 123));
        let back = ServerStats::from_fields(fields);
        assert_eq!(back, s);
    }
}
