//! Property tests for the wire codec: every well-formed message
//! round-trips byte-exactly, and *no* byte sequence — random garbage,
//! truncations of valid messages, corrupted tags — can make a decoder
//! panic. The decoders are the server's first line of defense against
//! hostile peers, so "errors, never panics" is the load-bearing property
//! (the live-socket twin of this suite is `tests/server_robustness.rs`
//! at the workspace root).

use dt_common::{Duration, Row, Timestamp, Value};
use dt_wire::{FrameReader, Hello, Poll, Request, Response};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0..2i64).prop_map(|b| Value::Bool(b == 1)),
        (i64::MIN..i64::MAX).prop_map(Value::Int),
        (-1.0e12..1.0e12f64).prop_map(Value::Float),
        "[a-z0-9 ]{0,24}".prop_map(Value::Str),
        (-1_000_000_000..1_000_000_000i64)
            .prop_map(|us| Value::Timestamp(Timestamp::from_micros(us))),
        (-1_000_000_000..1_000_000_000i64)
            .prop_map(|us| Value::Duration(Duration::from_micros(us))),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        "[ -~]{0,64}".prop_map(|sql| Request::Query { sql }),
        ("[ -~]{0,64}", -1_000_000..1_000_000i64).prop_map(|(sql, us)| Request::QueryAt {
            sql,
            at: Timestamp::from_micros(us),
        }),
        "[ -~]{0,64}".prop_map(|sql| Request::Prepare { sql }),
        ((0..u64::MAX), prop::collection::vec(value_strategy(), 0..6))
            .prop_map(|(id, params)| Request::ExecutePrepared { id, params }),
        Just(Request::Begin),
        Just(Request::Commit),
        Just(Request::Rollback),
        Just(Request::Stats),
        Just(Request::Close),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn requests_round_trip(req in request_strategy()) {
        let bytes = req.encode();
        prop_assert_eq!(Request::decode(&bytes).unwrap(), req);
    }

    #[test]
    fn row_responses_round_trip(
        rows in prop::collection::vec(prop::collection::vec(value_strategy(), 2..3), 0..8),
    ) {
        use std::sync::Arc;
        let schema = Arc::new(dt_common::Schema::new(vec![
            dt_common::Column::new("a", dt_common::DataType::Int),
            dt_common::Column::new("b", dt_common::DataType::Str),
        ]));
        let rows: Vec<Row> = rows.into_iter().map(Row::new).collect();
        let resp = Response::Rows(dt_wire::RemoteRows::new(schema, rows));
        let bytes = resp.encode();
        prop_assert_eq!(Response::decode(&bytes).unwrap(), resp);
    }

    #[test]
    fn garbage_never_panics_decoders(bytes in prop::collection::vec(0..256usize, 0..96)) {
        let bytes: Vec<u8> = bytes.iter().map(|b| *b as u8).collect();
        // Any outcome is fine; panicking is not.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = Hello::decode(&bytes);
    }

    #[test]
    fn truncations_of_valid_requests_error_cleanly(
        req in request_strategy(),
        frac in 0..100usize,
    ) {
        let bytes = req.encode();
        if bytes.len() > 1 {
            let cut = frac * (bytes.len() - 1) / 100;
            // A strict prefix of a valid encoding is never a valid
            // encoding of the same request (strict trailing-byte checks
            // make encodings prefix-free), and must never panic.
            if let Ok(decoded) = Request::decode(&bytes[..cut]) {
                prop_assert_ne!(decoded, req);
            }
        }
    }

    #[test]
    fn corrupted_tag_bytes_error_cleanly(
        req in request_strategy(),
        pos in 0..64usize,
        xor in 1..256usize,
    ) {
        let mut bytes = req.encode();
        if !bytes.is_empty() {
            let pos = pos % bytes.len();
            bytes[pos] ^= xor as u8;
            let _ = Request::decode(&bytes); // must not panic
        }
    }

    #[test]
    fn frame_reader_reassembles_any_chunking(
        payloads in prop::collection::vec("[ -~]{0,48}", 1..5),
        chunk in 1..17usize,
    ) {
        use std::io::Read;
        let mut wire = Vec::new();
        for p in &payloads {
            dt_wire::write_frame(&mut wire, p.as_bytes()).unwrap();
        }
        // A reader that yields at most `chunk` bytes per call.
        struct Chunked(std::io::Cursor<Vec<u8>>, usize);
        impl Read for Chunked {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.1.min(buf.len());
                self.0.read(&mut buf[..n])
            }
        }
        let mut src = Chunked(std::io::Cursor::new(wire), chunk);
        let mut fr = FrameReader::new();
        let mut got = Vec::new();
        loop {
            match fr.poll(&mut src, 1 << 20).unwrap() {
                Poll::Frame(f) => got.push(String::from_utf8(f).unwrap()),
                Poll::Pending => {}
                Poll::Closed => break,
            }
        }
        prop_assert_eq!(got, payloads);
    }
}
