//! Bank transfer: an atomic multi-table transaction with concurrent
//! readers that can never observe a half-applied state.
//!
//! A writer moves money between `checking` and `savings` in explicit
//! transactions (`Session::begin` → buffered DML → optimistic `COMMIT`).
//! Reader threads run multi-statement read transactions the whole time:
//! each reads `checking` and `savings` in *separate* statements, which is
//! only safe because both reads come from the transaction's one pinned
//! snapshot — the total balance must be conserved in every observation,
//! no matter how commits interleave.
//!
//! Run with: `cargo run --example bank_transfer`

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use dt_core::{DbConfig, Engine};

const TOTAL: i64 = 1_000;
const TRANSFERS: usize = 200;

fn main() {
    let engine = Engine::new(DbConfig::default());
    let session = engine.session();
    session
        .execute("CREATE TABLE checking (owner INT, balance INT)")
        .unwrap();
    session
        .execute("CREATE TABLE savings (owner INT, balance INT)")
        .unwrap();
    session
        .execute(&format!("INSERT INTO checking VALUES (1, {TOTAL})"))
        .unwrap();
    session.execute("INSERT INTO savings VALUES (1, 0)").unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let observations = Arc::new(AtomicUsize::new(0));

    // Readers: multi-statement read transactions over the pinned snapshot.
    let mut readers = Vec::new();
    for _ in 0..3 {
        let engine = engine.clone();
        let stop = Arc::clone(&stop);
        let observations = Arc::clone(&observations);
        readers.push(thread::spawn(move || {
            let session = engine.session();
            while !stop.load(Ordering::Relaxed) {
                let txn = session.begin();
                // Two separate statements — atomicity comes from the
                // snapshot pinned at BEGIN, not from single-query luck.
                let c = txn
                    .query("SELECT sum(balance) FROM checking")
                    .unwrap()
                    .rows()[0]
                    .get(0)
                    .expect_int()
                    .unwrap();
                let s = txn
                    .query("SELECT sum(balance) FROM savings")
                    .unwrap()
                    .rows()[0]
                    .get(0)
                    .expect_int()
                    .unwrap();
                assert_eq!(
                    c + s,
                    TOTAL,
                    "half-applied transfer observed: {c} + {s} != {TOTAL}"
                );
                txn.commit().unwrap();
                observations.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    // Writer: TRANSFERS explicit transactions moving 5 between the tables.
    let writer = {
        let engine = engine.clone();
        thread::spawn(move || {
            let session = engine.session();
            let mut conflicts = 0usize;
            let mut done = 0usize;
            while done < TRANSFERS {
                let mut txn = session.begin();
                txn.execute(
                    "UPDATE checking SET balance = balance - 5 WHERE owner = 1",
                )
                .unwrap();
                txn.execute(
                    "UPDATE savings SET balance = balance + 5 WHERE owner = 1",
                )
                .unwrap();
                match txn.commit() {
                    Ok(_) => done += 1,
                    // A concurrent committer on the same tables won the
                    // race (not possible in this single-writer example,
                    // but this is the shape real applications use).
                    Err(e) if dt_core::is_serialization_conflict(&e) => conflicts += 1,
                    Err(e) => panic!("commit failed: {e}"),
                }
            }
            conflicts
        })
    };

    let conflicts = writer.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    let final_checking = session
        .query("SELECT balance FROM checking WHERE owner = 1")
        .unwrap()
        .rows()[0]
        .get(0)
        .expect_int()
        .unwrap();
    let final_savings = session
        .query("SELECT balance FROM savings WHERE owner = 1")
        .unwrap()
        .rows()[0]
        .get(0)
        .expect_int()
        .unwrap();
    println!(
        "{TRANSFERS} transfers committed ({conflicts} retried after conflicts)"
    );
    println!(
        "final balances: checking = {final_checking}, savings = {final_savings}"
    );
    println!(
        "total conserved in {} concurrent snapshot observations",
        observations.load(Ordering::Relaxed)
    );
    assert_eq!(final_checking + final_savings, TOTAL);
    assert_eq!(final_savings, (TRANSFERS as i64) * 5);
}
