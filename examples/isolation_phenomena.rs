//! The paper's §4 worked example (Figures 1 and 2): the same application
//! history analyzed under persisted table semantics and under delayed view
//! semantics with derivations.
//!
//! Run with: `cargo run --example isolation_phenomena`

use dt_isolation::{analyze, History};

/// Figure 1 — persisted table semantics. A dynamic table `dt` (object `y`)
/// reads base table `bt` (object `x`). Refreshes are ordinary transactions
/// T3 and T4. T5 reads `y3` and `x2` and observes read skew — but the DSG
/// is serializable: "the framework is unable to identify a phenomenon that
/// seems obvious to observers".
fn figure_1() -> History {
    let mut h = History::new();
    h.write(1, "x", 1).commit(1);
    h.read(3, "x", 1).write(3, "y", 3).commit(3); // refresh as plain txn
    h.write(2, "x", 2).commit(2);
    h.read(4, "x", 2).write(4, "y", 4).commit(4); // refresh as plain txn
    h.read(5, "y", 3).read(5, "x", 2).commit(5);
    h
}

/// Figure 2 — the same history under DVS: refreshes become *derivations*,
/// pure computation whose enclosing transaction is irrelevant (Theorem 1).
/// The derivation path `y3 ⊢ x1` generates the anti-dependency T5 → T2,
/// closing a G-single cycle and revealing the read skew.
fn figure_2() -> History {
    let mut h = History::new();
    h.write(1, "x", 1).commit(1);
    h.derive(3, ("y", 3), &[("x", 1)]).commit(3);
    h.write(2, "x", 2).commit(2);
    h.derive(4, ("y", 4), &[("x", 2)]).commit(4);
    h.read(5, "y", 3).read(5, "x", 2).commit(5);
    h
}

fn main() {
    println!("=== Figure 1: persisted table semantics ===\n");
    let r1 = analyze(&figure_1());
    print!("{}", r1.dsg);
    println!("phenomena: {:?}", r1.phenomena);
    println!("isolation: {}   <-- serializable despite visible read skew\n", r1.level);

    println!("=== Figure 2: delayed view semantics (derivations) ===\n");
    let r2 = analyze(&figure_2());
    print!("{}", r2.dsg);
    println!("phenomena:");
    for p in &r2.phenomena {
        println!(
            "  {} {}",
            p.tag(),
            if p.is_g_single() { "(G-single)" } else { "" }
        );
    }
    println!("isolation: {}   <-- the read skew is now visible as a G2 cycle\n", r2.level);

    // Theorem 1, live: move the derivation of y3 into any transaction —
    // the dependency structure is identical.
    let h = figure_2();
    let base = dt_isolation::Dsg::build(&h).structure();
    for t in [1, 2, 5, 42] {
        let moved = h
            .move_derivation(&dt_isolation::VersionRef::new("y", 3), t)
            .unwrap();
        assert_eq!(dt_isolation::Dsg::build(&moved).structure(), base);
    }
    println!("Theorem 1 verified: moving the y3 derivation into T1, T2, T5, or T42");
    println!("leaves the DSG unchanged — derivations are pure computation.");
}
