//! "Ease across the latency spectrum": one pipeline, four target lags from
//! streaming (1 minute) to batch (16 hours), all the same SQL. Simulates a
//! day of traffic and reports the lag and cost each DT achieved.
//!
//! Run with: `cargo run --example latency_spectrum`

use dt_common::{Duration, Timestamp};
use dt_core::{DbConfig, Engine};

fn main() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let db = engine.session();
    db.execute("CREATE TABLE metrics (host INT, value INT)").unwrap();
    db.execute("INSERT INTO metrics VALUES (1, 10), (2, 20)").unwrap();

    // The same aggregation at four points of the latency spectrum.
    let lags = ["1 minute", "15 minutes", "2 hours", "16 hours"];
    for (i, lag) in lags.iter().enumerate() {
        db.execute(&format!(
            "CREATE DYNAMIC TABLE agg_{i} TARGET_LAG = '{lag}' WAREHOUSE = wh \
             AS SELECT host, count(*) n, sum(value) total FROM metrics GROUP BY host"
        ))
        .unwrap();
    }

    // A day of simulated traffic: one insert every 10 minutes.
    let day = Timestamp::from_secs(86_400);
    let mut t = Timestamp::EPOCH;
    let mut host = 0i64;
    while t < day {
        t = t.add(Duration::from_mins(10));
        engine.run_scheduler_until(t).unwrap();
        host = (host + 1) % 8;
        db.execute(&format!("INSERT INTO metrics VALUES ({host}, 1)")).unwrap();
    }
    engine.run_scheduler_until(day).unwrap();

    let total_refreshes = engine
        .refresh_log()
        .entries()
        .iter()
        .filter(|e| !e.initial)
        .count();
    println!("one day simulated; {total_refreshes} scheduled refreshes total");
    println!("{:>10} {:>10} {:>12} {:>12} {:>12}", "DT", "target", "refreshes", "no_data", "max peak lag");
    for (i, lag) in lags.iter().enumerate() {
        let st = engine.inspect(|s| {
            let id = s.catalog().resolve(&format!("agg_{i}")).unwrap().id;
            s.scheduler().state(id).unwrap().clone()
        });
        let total: u64 = st.action_counts.values().sum();
        let no_data = st.action_counts.get("no_data").copied().unwrap_or(0);
        let max_peak = st
            .lag_samples
            .iter()
            .filter(|s| s.peak)
            .map(|s| s.lag)
            .max()
            .unwrap_or(Duration::ZERO);
        println!(
            "{:>10} {:>10} {:>12} {:>12} {:>12}",
            format!("agg_{i}"),
            lag,
            total,
            no_data,
            max_peak.to_string()
        );
    }
    println!(
        "\nwarehouse credits: {:.1} node-seconds — tighter lags cost more; \
         the SQL never changed.",
        engine.inspect(|s| s.warehouses().total_credits())
    );
}
