//! Quickstart: create a base table, a Dynamic Table over it, and watch
//! delayed view semantics in action.
//!
//! Run with: `cargo run --example quickstart`

use dt_core::{Database, DbConfig};

fn main() {
    let mut db = Database::new(DbConfig::default());
    db.create_warehouse("compute_wh", 4).unwrap();

    // A base table with some raw events.
    db.execute("CREATE TABLE orders (id INT, customer STRING, amount FLOAT)")
        .unwrap();
    db.execute(
        "INSERT INTO orders VALUES \
         (1, 'acme', 120.0), (2, 'acme', 80.0), (3, 'globex', 42.5)",
    )
    .unwrap();

    // A Dynamic Table: just a SQL query plus a target lag. Snowflake-style,
    // everything else (incrementalization, scheduling) is automatic.
    db.execute(
        "CREATE DYNAMIC TABLE revenue_by_customer \
         TARGET_LAG = '1 minute' \
         WAREHOUSE = compute_wh \
         AS SELECT customer, count(*) n_orders, sum(amount) revenue \
            FROM orders GROUP BY customer",
    )
    .unwrap();

    println!("After initialization:");
    for row in db.query_sorted("SELECT * FROM revenue_by_customer").unwrap() {
        println!("  {row}");
    }

    // New data arrives. The DT is *delayed*: it still shows the old
    // snapshot until a refresh happens — that is delayed view semantics.
    db.execute("INSERT INTO orders VALUES (4, 'globex', 1000.0)").unwrap();
    println!("\nAfter new order, before refresh (contents are a consistent past snapshot):");
    for row in db.query_sorted("SELECT * FROM revenue_by_customer").unwrap() {
        println!("  {row}");
    }

    // A manual refresh brings it up to date incrementally: only the
    // affected group (globex) is recomputed.
    db.execute("ALTER DYNAMIC TABLE revenue_by_customer REFRESH").unwrap();
    let last = db.refresh_log().last().unwrap();
    println!(
        "\nRefresh action: {} ({} changed rows)",
        last.action, last.changed_rows
    );
    println!("After refresh:");
    for row in db.query_sorted("SELECT * FROM revenue_by_customer").unwrap() {
        println!("  {row}");
    }

    // The isolation guarantee (§4 of the paper): a query over one DT gets
    // snapshot isolation; mixing DTs with other tables drops to Read
    // Committed.
    println!(
        "\nIsolation of `SELECT * FROM revenue_by_customer`: {}",
        db.query_isolation_level("SELECT * FROM revenue_by_customer")
            .unwrap()
    );
    println!(
        "Isolation of a DT ⋈ base-table join: {}",
        db.query_isolation_level(
            "SELECT * FROM revenue_by_customer r JOIN orders o ON r.customer = o.customer"
        )
        .unwrap()
    );
}
