//! Quickstart: one shared `Engine`, per-connection `Session`s, a Dynamic
//! Table over a base table, and delayed view semantics in action.
//!
//! Run with: `cargo run --example quickstart`

use dt_common::Value;
use dt_core::{DbConfig, Engine};

fn main() {
    // The engine owns catalog, storage, transactions, scheduler, and
    // warehouses. It is cheaply cloneable and Send + Sync — every
    // connection gets its own Session against the same engine.
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("compute_wh", 4).unwrap();
    let session = engine.session();

    // A base table with some raw events.
    session
        .execute("CREATE TABLE orders (id INT, customer STRING, amount FLOAT)")
        .unwrap();
    session
        .execute(
            "INSERT INTO orders VALUES \
             (1, 'acme', 120.0), (2, 'acme', 80.0), (3, 'globex', 42.5)",
        )
        .unwrap();

    // A Dynamic Table: just a SQL query plus a target lag. Snowflake-style,
    // everything else (incrementalization, scheduling) is automatic.
    session
        .execute(
            "CREATE DYNAMIC TABLE revenue_by_customer \
             TARGET_LAG = '1 minute' \
             WAREHOUSE = compute_wh \
             AS SELECT customer, count(*) n_orders, sum(amount) revenue \
                FROM orders GROUP BY customer",
        )
        .unwrap();

    println!("After initialization:");
    for row in session.query_sorted("SELECT * FROM revenue_by_customer").unwrap() {
        println!("  {row}");
    }

    // New data arrives. The DT is *delayed*: it still shows the old
    // snapshot until a refresh happens — that is delayed view semantics.
    session
        .execute("INSERT INTO orders VALUES (4, 'globex', 1000.0)")
        .unwrap();
    println!("\nAfter new order, before refresh (contents are a consistent past snapshot):");
    for row in session.query_sorted("SELECT * FROM revenue_by_customer").unwrap() {
        println!("  {row}");
    }

    // A manual refresh brings it up to date incrementally: only the
    // affected group (globex) is recomputed.
    session
        .execute("ALTER DYNAMIC TABLE revenue_by_customer REFRESH")
        .unwrap();
    let log = engine.refresh_log();
    let last = log.last().unwrap();
    println!(
        "\nRefresh action: {} ({} changed rows)",
        last.action, last.changed_rows
    );
    println!("After refresh:");
    for row in session.query_sorted("SELECT * FROM revenue_by_customer").unwrap() {
        println!("  {row}");
    }

    // Prepared statements: lex/parse/bind once, then execute with
    // positional `?` parameters — here, two bindings against one plan.
    let stmt = session
        .prepare("SELECT revenue FROM revenue_by_customer WHERE customer = ?")
        .unwrap();
    for customer in ["acme", "globex"] {
        let result = stmt.query(&[Value::Str(customer.into())]).unwrap();
        println!("\nrevenue({customer}) = {}", result.rows()[0].get(0));
    }

    // The isolation guarantee (§4 of the paper): a query over one DT gets
    // snapshot isolation; mixing DTs with other tables drops to Read
    // Committed.
    println!(
        "\nIsolation of `SELECT * FROM revenue_by_customer`: {}",
        session
            .query_isolation_level("SELECT * FROM revenue_by_customer")
            .unwrap()
    );
    println!(
        "Isolation of a DT ⋈ base-table join: {}",
        session
            .query_isolation_level(
                "SELECT * FROM revenue_by_customer r JOIN orders o ON r.customer = o.customer"
            )
            .unwrap()
    );
}
