//! The bank-transfer example, moved across the network: the engine runs
//! behind `dt-server` on an ephemeral TCP port, and every actor — the
//! schema setup, the transferring writers, the invariant-checking
//! readers — is a `dt-client` connection speaking the framed wire
//! protocol. Same guarantees as the in-process version:
//!
//! * each transfer is an explicit transaction (BEGIN → two UPDATEs →
//!   COMMIT), retried on optimistic conflicts via
//!   [`dt_client::Client::run_txn`];
//! * readers observe `checking + savings` in two separate statements
//!   inside a read transaction and must always see the total conserved,
//!   because both reads come from the transaction's pinned snapshot —
//!   even though every statement now crosses a socket.
//!
//! Finishes with a `SHOW STATS` round trip so the server's own counters
//! (connections, requests, commits, conflicts) tell the story too.
//!
//! Run with: `cargo run --example remote_bank_transfer`

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use dynamic_tables::client::Client;
use dynamic_tables::core::{DbConfig, Engine};
use dynamic_tables::server::{Server, ServerConfig};
use dt_common::Value;

const TOTAL: i64 = 1_000;
const WRITERS: usize = 2;
const TRANSFERS_EACH: usize = 50;

fn read_int(rows: &dynamic_tables::wire::RemoteRows) -> i64 {
    match &rows.rows()[0].values()[0] {
        Value::Int(v) => *v,
        other => panic!("expected Int, got {other:?}"),
    }
}

fn main() {
    // The "database side": an engine served over TCP.
    let engine = Engine::new(DbConfig::default());
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    println!("serving on {addr}");

    // The "application side": everything below is remote clients.
    let mut setup = Client::connect(addr).unwrap();
    setup
        .execute("CREATE TABLE checking (owner INT, balance INT)")
        .unwrap();
    setup
        .execute("CREATE TABLE savings (owner INT, balance INT)")
        .unwrap();
    setup
        .execute(&format!("INSERT INTO checking VALUES (1, {TOTAL})"))
        .unwrap();
    setup.execute("INSERT INTO savings VALUES (1, 0)").unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let observations = Arc::new(AtomicUsize::new(0));

    // Readers: remote multi-statement read transactions; the pinned
    // snapshot makes the two SELECTs atomic despite the network hops.
    let mut readers = Vec::new();
    for _ in 0..2 {
        let stop = Arc::clone(&stop);
        let observations = Arc::clone(&observations);
        readers.push(thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            while !stop.load(Ordering::Relaxed) {
                client.begin().unwrap();
                let c = read_int(&client.query("SELECT sum(balance) FROM checking").unwrap());
                let s = read_int(&client.query("SELECT sum(balance) FROM savings").unwrap());
                client.commit().unwrap();
                assert_eq!(
                    c + s,
                    TOTAL,
                    "half-applied transfer observed over the wire: {c} + {s}"
                );
                observations.fetch_add(1, Ordering::Relaxed);
            }
            client.close().unwrap();
        }));
    }

    // Writers: remote transfers racing on the same rows; conflicts come
    // back as typed errors and run_txn retries the whole transaction.
    let writers: Vec<_> = (0..WRITERS)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..TRANSFERS_EACH {
                    client
                        .run_txn(64, |c| {
                            c.execute(
                                "UPDATE checking SET balance = balance - 5 WHERE owner = 1",
                            )?;
                            c.execute(
                                "UPDATE savings SET balance = balance + 5 WHERE owner = 1",
                            )?;
                            Ok(())
                        })
                        .unwrap();
                }
                client.close().unwrap();
            })
        })
        .collect();

    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    let final_checking = read_int(&setup.query("SELECT balance FROM checking").unwrap());
    let final_savings = read_int(&setup.query("SELECT balance FROM savings").unwrap());
    let transfers = (WRITERS * TRANSFERS_EACH) as i64;
    println!(
        "{transfers} remote transfers committed; final balances: \
         checking = {final_checking}, savings = {final_savings}"
    );
    println!(
        "total conserved in {} remote snapshot observations",
        observations.load(Ordering::Relaxed)
    );
    assert_eq!(final_checking + final_savings, TOTAL);
    assert_eq!(final_savings, transfers * 5);

    // The server's own view of what just happened.
    let stats = setup.stats().unwrap();
    println!(
        "server stats: {} connections served, {} requests, {} commits, {} conflicts",
        stats.total_connections, stats.requests_served, stats.commits, stats.conflicts
    );
    assert!(stats.commits >= transfers as u64);

    setup.close().unwrap();
    server.shutdown();
    println!("server drained and shut down cleanly");
}
