//! The paper's Listing 1: a two-stage pipeline tracking late-arriving
//! trains, driven by the scheduler on simulated time.
//!
//! Run with: `cargo run --example train_delays`

use dt_common::{Duration, Timestamp};
use dt_core::{DbConfig, Engine};

fn main() {
    let cfg = DbConfig { validate_dvs: true, ..DbConfig::default() };
    let engine = Engine::new(cfg);
    engine.create_warehouse("trains_wh", 2).unwrap();
    let db = engine.session();

    db.execute("CREATE TABLE trains (id INT)").unwrap();
    db.execute(
        "CREATE TABLE train_events (train_id INT, type STRING, time TIMESTAMP, schedule_id INT)",
    )
    .unwrap();
    db.execute("CREATE TABLE schedule (id INT, expected_arrival_time TIMESTAMP)")
        .unwrap();
    db.execute("INSERT INTO trains VALUES (1), (2), (3)").unwrap();

    // Listing 1, verbatim modulo variant-path syntax (including the
    // WARHEOUSE typo, which our parser accepts for fidelity).
    db.execute(
        "CREATE DYNAMIC TABLE train_arrivals \
         TARGET_LAG = DOWNSTREAM \
         WARHEOUSE = trains_wh \
         AS SELECT t.id train_id, e.time arrival_time, e.schedule_id schedule_id \
            FROM train_events e JOIN trains t ON e.train_id = t.id \
            WHERE e.type = 'ARRIVAL'",
    )
    .unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE delayed_trains \
         TARGET_LAG = '1 minute' \
         WAREHOUSE = trains_wh \
         AS SELECT train_id, \
                   date_trunc(hour, s.expected_arrival_time) hour, \
                   count_if(arrival_time - s.expected_arrival_time > INTERVAL '10 minutes') num_delays \
            FROM train_arrivals a JOIN schedule s ON a.schedule_id = s.id \
            GROUP BY ALL",
    )
    .unwrap();

    // Simulate a morning of arrivals: every 2 minutes a train arrives,
    // some of them late; the scheduler keeps delayed_trains within its
    // 1-minute target lag.
    let mut schedule_id = 0;
    for round in 0..30i64 {
        let expected = Timestamp::from_secs(3600 + round * 120);
        let late_by = if round % 3 == 0 { 720 } else { 30 }; // 12 min or 30 s
        let actual = expected.add(Duration::from_secs(late_by));
        schedule_id += 1;
        db.execute(&format!(
            "INSERT INTO schedule VALUES ({schedule_id}, {})",
            expected.as_micros()
        ))
        .unwrap();
        db.execute(&format!(
            "INSERT INTO train_events VALUES ({}, 'ARRIVAL', {}, {schedule_id})",
            round % 3 + 1,
            actual.as_micros()
        ))
        .unwrap();
        engine.run_scheduler_until(Timestamp::from_secs((round + 1) * 120)).unwrap();
    }

    db.execute("ALTER DYNAMIC TABLE delayed_trains REFRESH").unwrap();
    println!("delayed trains by hour:");
    for row in db
        .query_sorted("SELECT train_id, hour, num_delays FROM delayed_trains")
        .unwrap()
    {
        println!("  {row}");
    }

    // Telemetry: how the pipeline behaved.
    let st = engine.inspect(|s| {
        let id = s.catalog().resolve("delayed_trains").unwrap().id;
        s.scheduler().state(id).unwrap().clone()
    });
    println!("\nrefresh actions for delayed_trains: {:?}", st.action_counts);
    let max_peak = st
        .lag_samples
        .iter()
        .filter(|s| s.peak)
        .map(|s| s.lag)
        .max()
        .unwrap();
    println!("max observed lag peak: {max_peak} (target: 1m)");
    println!(
        "warehouse credits consumed: {:.1} node-seconds",
        engine.inspect(|s| s.warehouses().total_credits())
    );
}
