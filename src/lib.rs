//! Umbrella crate for the Dynamic Tables reproduction workspace.
//!
//! Re-exports the public API of every subsystem crate so examples and
//! integration tests can use a single dependency. See `dt-core` for the
//! main entry points, [`dt_core::Engine`] and [`dt_core::Session`].

pub use dt_catalog as catalog;
pub use dt_client as client;
pub use dt_common as common;
pub use dt_core as core;
pub use dt_exec as exec;
pub use dt_isolation as isolation;
pub use dt_ivm as ivm;
pub use dt_plan as plan;
pub use dt_scheduler as scheduler;
pub use dt_server as server;
pub use dt_sql as sql;
pub use dt_storage as storage;
pub use dt_txn as txn;
pub use dt_wire as wire;
