//! Zero-copy cloning (§3.4), EXPLAIN, and SHOW DYNAMIC TABLES.

use dt_common::{row, Value};
use dt_core::{DbConfig, Engine, ExecResult, Session};

fn setup() -> (Engine, Session) {
    let cfg = DbConfig { validate_dvs: true, ..DbConfig::default() };
    let eng = Engine::new(cfg);
    eng.create_warehouse("wh", 2).unwrap();
    let db = eng.session();
    (eng, db)
}

#[test]
fn clone_table_shares_data_and_diverges_after_dml() {
    let (_eng, db) = setup();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    db.execute("CREATE TABLE t2 CLONE t").unwrap();
    assert_eq!(db.query_sorted("SELECT * FROM t2").unwrap().len(), 2);
    // Divergence: DML on the clone leaves the source untouched.
    db.execute("INSERT INTO t2 VALUES (3)").unwrap();
    db.execute("DELETE FROM t WHERE k = 1").unwrap();
    assert_eq!(db.query_sorted("SELECT * FROM t").unwrap(), vec![row!(2i64)]);
    assert_eq!(db.query_sorted("SELECT * FROM t2").unwrap().len(), 3);
}

#[test]
fn clone_dt_avoids_reinitialization_and_refreshes_independently() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, sum(v) s FROM t GROUP BY k",
    )
    .unwrap();
    let refreshes_before = eng.refresh_log().len();
    db.execute("CREATE DYNAMIC TABLE d2 CLONE d").unwrap();
    // No new refresh ran: the clone took the source's contents and data
    // timestamp ("Cloned DTs can avoid reinitialization", §3.4).
    assert_eq!(eng.refresh_log().len(), refreshes_before);
    assert_eq!(
        db.query_sorted("SELECT * FROM d2").unwrap(),
        vec![row!(1i64, 10i64)]
    );
    // The clone refreshes on its own and catches up with new data.
    db.execute("INSERT INTO t VALUES (1, 5)").unwrap();
    db.execute("ALTER DYNAMIC TABLE d2 REFRESH").unwrap();
    assert_eq!(
        db.query_sorted("SELECT * FROM d2").unwrap(),
        vec![row!(1i64, 15i64)]
    );
    // The source is still at the old snapshot until its own refresh.
    assert_eq!(
        db.query_sorted("SELECT * FROM d").unwrap(),
        vec![row!(1i64, 10i64)]
    );
}

#[test]
fn clone_name_conflicts_rejected() {
    let (_eng, db) = setup();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    assert!(db.execute("CREATE TABLE t CLONE t").is_err());
    assert!(db.execute("CREATE TABLE u CLONE missing").is_err());
}

#[test]
fn explain_renders_plan_and_mode() {
    let (_eng, db) = setup();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    let ExecResult::Ok(text) = db
        .execute("EXPLAIN SELECT k, count(*) FROM t WHERE v > 0 GROUP BY k")
        .unwrap()
    else {
        panic!()
    };
    assert!(text.contains("Aggregate"), "{text}");
    assert!(text.contains("Filter"), "{text}");
    assert!(text.contains("Scan t"), "{text}");
    assert!(text.contains("incrementally maintainable"), "{text}");

    let ExecResult::Ok(text) = db
        .execute("EXPLAIN SELECT k FROM t ORDER BY k LIMIT 1")
        .unwrap()
    else {
        panic!()
    };
    assert!(text.contains("full refresh only"), "{text}");
}

#[test]
fn show_dynamic_tables_reports_status() {
    let (_eng, db) = setup();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '5 minutes' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    db.execute("ALTER DYNAMIC TABLE d SUSPEND").unwrap();
    let rows = db.query("SHOW DYNAMIC TABLES").unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows.schema().names()[0], "name");
    let r = &rows.rows()[0];
    assert_eq!(r.get(0), &Value::Str("d".into()));
    assert_eq!(r.get(1), &Value::Str("5m".into()));
    assert_eq!(r.get(2), &Value::Str("INCREMENTAL".into()));
    assert_eq!(r.get(3), &Value::Str("SUSPENDED".into()));
    assert_eq!(r.get(4), &Value::Str("wh".into()));
    assert_eq!(r.get(5), &Value::Int(2));
}
