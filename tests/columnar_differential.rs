//! Differential tests for the vectorized read path: every query runs
//! through BOTH executors — the legacy row-at-a-time interpreter
//! (`dt_exec::execute_rows`, no pushdown) and the columnar batch pipeline
//! (`dt_exec::execute` over `push_down_filters`, with zone-map pruning and
//! morsel-parallel scans when backed by real storage) — and the results
//! must be identical, including row order. Order equality is deliberate:
//! every batch operator preserves the row interpreter's output order, so
//! the two paths are bit-for-bit interchangeable.

use dt_common::{Column, DataType, DtError, DtResult, EntityId, Row, Schema, Value};
use dt_core::{DbConfig, Engine, Session};
use dt_exec::MapProvider;
use dt_plan::{Binder, ResolvedRelation, Resolver};
use proptest::prelude::*;

fn parse_query(sql: &str) -> dt_sql::ast::Query {
    match dt_sql::parse(sql).unwrap() {
        dt_sql::ast::Statement::Query(q) => q,
        other => panic!("not a query: {other:?}"),
    }
}

/// Run one SQL query through both executors against a live snapshot and
/// assert the results match exactly (values and order).
fn assert_paths_agree(session: &Session, sql: &str) {
    let q = parse_query(sql);
    let snap = session.snapshot();
    let plan = snap.bind_query(&q).unwrap().plan;
    let legacy = dt_exec::execute_rows(&plan, &snap).unwrap();
    let pushed = dt_plan::push_down_filters(&plan);
    let columnar = dt_exec::execute(&pushed, &snap).unwrap();
    assert_eq!(legacy, columnar, "paths diverged for: {sql}");
}

/// A populated engine: two tables spanning several storage partitions so
/// zone maps have real min/max spreads to prune on, with NULLs, strings,
/// and floats in the mix.
fn fixture_engine() -> Engine {
    let engine = Engine::new(DbConfig::default());
    let s = engine.session();
    s.execute("CREATE TABLE t1 (k INT, v INT, name STRING)").unwrap();
    s.execute("CREATE TABLE t2 (k INT, w FLOAT)").unwrap();
    // Separate statements -> separate commits -> separate partitions,
    // each with a tight, disjoint key range for the zone maps.
    for chunk in 0..6i64 {
        let rows: Vec<String> = (0..50)
            .map(|i| {
                let k = chunk * 50 + i;
                let name = if k % 7 == 0 { "NULL".into() } else { format!("'n{}'", k % 10) };
                format!("({k}, {}, {name})", k % 13)
            })
            .collect();
        s.execute(&format!("INSERT INTO t1 VALUES {}", rows.join(", ")))
            .unwrap();
    }
    for chunk in 0..4i64 {
        let rows: Vec<String> = (0..25)
            .map(|i| {
                let k = chunk * 25 + i;
                format!("({k}, {}.5)", k * 2)
            })
            .collect();
        s.execute(&format!("INSERT INTO t2 VALUES {}", rows.join(", ")))
            .unwrap();
    }
    engine
}

/// The query fixtures: one per operator family the executor supports, plus
/// filter shapes chosen to hit each vectorization tier (fully vectorized,
/// prefix + residual, full row fallback) and each pushdown outcome
/// (prunable range, unprunable, mixed conjuncts).
const FIXTURES: &[&str] = &[
    // Pushable single-column ranges (zone maps prune most partitions).
    "SELECT k, v FROM t1 WHERE k < 20",
    "SELECT k, v FROM t1 WHERE k >= 280",
    "SELECT k FROM t1 WHERE k > 90 AND k <= 110",
    // Unpushable / partially pushable predicates.
    "SELECT k FROM t1 WHERE k + 1 > 100 AND k < 150",
    "SELECT k, v FROM t1 WHERE v = 3 OR k = 299",
    "SELECT k FROM t1 WHERE NOT (k < 250)",
    // IN-list membership through the vectorized mask: plain, negated,
    // string-typed, NULL candidates (Kleene), and mixed with residuals.
    "SELECT k, v FROM t1 WHERE k IN (3, 7, 250, 299)",
    "SELECT k FROM t1 WHERE v NOT IN (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)",
    "SELECT k, name FROM t1 WHERE name IN ('n1', 'n4')",
    "SELECT k FROM t1 WHERE v IN (1, NULL)",
    "SELECT k FROM t1 WHERE v NOT IN (1, NULL)",
    "SELECT k FROM t1 WHERE k IN (5, 10, 15) AND k + v > 6",
    "SELECT k FROM t1 WHERE NOT (k IN (1, 2, 3)) AND k < 8",
    "SELECT k FROM t1 WHERE k + 1 IN (4, 8)",
    // NULL semantics through the vectorized mask.
    "SELECT k, name FROM t1 WHERE name IS NULL",
    "SELECT k FROM t1 WHERE name IS NOT NULL AND k < 30",
    "SELECT k FROM t1 WHERE name = 'n3'",
    // Projection shapes: zero-copy column picks and computed exprs.
    "SELECT name, k FROM t1 WHERE k < 40",
    "SELECT k * 2 d, v FROM t1 WHERE k BETWEEN 10 AND 25",
    // Joins (equi and non-equi padding paths).
    "SELECT a.k, a.v, b.w FROM t1 a JOIN t2 b ON a.k = b.k WHERE a.k < 60",
    "SELECT a.k, b.w FROM t1 a LEFT JOIN t2 b ON a.k = b.k WHERE a.k < 120",
    "SELECT a.v, b.w FROM t1 a FULL OUTER JOIN t2 b ON a.k = b.k WHERE a.k < 10 OR a.k IS NULL",
    // Aggregation, distinct, union, windows, sort, limit.
    "SELECT v, count(*) c, min(k) lo, max(k) hi FROM t1 GROUP BY v",
    "SELECT count(*) n, sum(v) s FROM t1 WHERE k > 250",
    "SELECT DISTINCT v FROM t1 WHERE k < 100",
    "SELECT k FROM t1 WHERE k < 5 UNION ALL SELECT k FROM t2 WHERE k < 5",
    "SELECT v, k, sum(k) OVER (PARTITION BY v ORDER BY k) run FROM t1 WHERE k < 50",
    "SELECT k, v FROM t1 WHERE v > 5 ORDER BY v, k DESC LIMIT 17",
    "SELECT k FROM t1 ORDER BY k LIMIT 3",
    // Aggregate over an empty (fully pruned) scan: identity row parity.
    "SELECT count(*) n, sum(v) s FROM t1 WHERE k > 100000",
    // Nested subquery with filters on both levels.
    "SELECT k, d FROM (SELECT k, v - 1 d FROM t1 WHERE k > 30) x WHERE d < 5",
];

#[test]
fn every_fixture_agrees_between_row_and_columnar_paths() {
    let engine = fixture_engine();
    let session = engine.session();
    for sql in FIXTURES {
        assert_paths_agree(&session, sql);
    }
}

#[test]
fn fixtures_agree_under_forced_parallel_scans() {
    // Re-run the scan-heavy fixtures with the morsel cursor forced to more
    // workers than this host has cores: partition-order reassembly must
    // keep the output identical to the sequential row path.
    let engine = fixture_engine();
    let session = engine.session();
    for sql in FIXTURES {
        let q = parse_query(sql);
        let mut snap = session.snapshot();
        snap.set_scan_threads(4);
        let plan = snap.bind_query(&q).unwrap().plan;
        let legacy = dt_exec::execute_rows(&plan, &snap).unwrap();
        let columnar = dt_exec::execute(&dt_plan::push_down_filters(&plan), &snap).unwrap();
        assert_eq!(legacy, columnar, "parallel scan diverged for: {sql}");
    }
}

#[test]
fn pushdown_never_changes_results() {
    // The pushed plan must agree with the *unpushed* plan on the same
    // executor too — pushdown is a pure motion of work, not a rewrite.
    let engine = fixture_engine();
    let session = engine.session();
    for sql in FIXTURES {
        let q = parse_query(sql);
        let snap = session.snapshot();
        let plan = snap.bind_query(&q).unwrap().plan;
        let pushed = dt_plan::push_down_filters(&plan);
        let unpushed = dt_exec::execute(&plan, &snap).unwrap();
        let with_pushdown = dt_exec::execute(&pushed, &snap).unwrap();
        assert_eq!(unpushed, with_pushdown, "pushdown changed results for: {sql}");
    }
}

// ---------------------------------------------------------------------------
// Property-based differential: random tables, random filters, random
// projections. Runs at the executor level over a MapProvider so each case
// is cheap; predicates are drawn from the comparison/AND/OR/NOT/IS NULL
// grammar (no arithmetic that could divide by zero) so both paths must
// agree on values, NULL propagation, and order.
// ---------------------------------------------------------------------------

struct PropFixture;

impl Resolver for PropFixture {
    fn resolve_relation(&self, name: &str) -> DtResult<ResolvedRelation> {
        if name == "t" {
            Ok(ResolvedRelation::Table {
                entity: EntityId(1),
                schema: Schema::new(vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Int),
                    Column::new("c", DataType::Int),
                ]),
            })
        } else {
            Err(DtError::Catalog(format!("unknown relation '{name}'")))
        }
    }
}

fn opt_int() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-5i64..15).prop_map(Value::Int),
        (-5i64..15).prop_map(Value::Int),
        (-5i64..15).prop_map(Value::Int),
        Just(Value::Null),
    ]
}

fn table_rows() -> impl Strategy<Value = Vec<Row>> {
    prop::collection::vec(
        (opt_int(), opt_int(), opt_int()).prop_map(|(a, b, c)| Row::new(vec![a, b, c])),
        0..40,
    )
}

/// A random predicate over columns a/b/c, rendered as SQL text from a
/// vector of entropy words (the vendored proptest stand-in has no
/// recursive strategy combinator, so recursion lives in plain code).
fn predicate_from(seeds: &[u64]) -> String {
    fn build(seeds: &[u64], pos: &mut usize, depth: usize) -> String {
        let mut next = || {
            let v = seeds[*pos % seeds.len()];
            *pos += 1;
            v
        };
        let col = |v: u64| ["a", "b", "c"][(v % 3) as usize];
        let choice = if depth >= 3 { next() % 3 } else { next() % 6 };
        match choice {
            // Leaves: column-vs-literal, column-vs-column, IS NULL.
            0 | 1 => {
                let c = col(next());
                let op = ["=", "<>", "<", "<=", ">", ">="][(next() % 6) as usize];
                let lit = match next() % 5 {
                    0 => "NULL".to_string(),
                    v => ((v as i64) * 4 - 8).to_string(),
                };
                format!("{c} {op} {lit}")
            }
            2 => {
                let (c1, c2) = (col(next()), col(next()));
                if next() % 4 == 0 {
                    format!("{c1} IS NULL")
                } else {
                    let op = ["=", "<", ">="][(next() % 3) as usize];
                    format!("{c1} {op} {c2}")
                }
            }
            // Connectives.
            3 => format!(
                "({}) AND ({})",
                build(seeds, pos, depth + 1),
                build(seeds, pos, depth + 1)
            ),
            4 => format!(
                "({}) OR ({})",
                build(seeds, pos, depth + 1),
                build(seeds, pos, depth + 1)
            ),
            _ => format!("NOT ({})", build(seeds, pos, depth + 1)),
        }
    }
    build(seeds, &mut 0, 0)
}

const PROJECTIONS: &[&str] = &[
    "a, b, c",
    "c, a",
    "b",
    "a, a + b s",
    "count(*) n, sum(a) s",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn random_filters_and_projections_agree(
        rows in table_rows(),
        seeds in prop::collection::vec(0u64..u64::MAX, 8..48),
        proj_pick in 0usize..PROJECTIONS.len(),
    ) {
        let sql = format!(
            "SELECT {} FROM t WHERE {}",
            PROJECTIONS[proj_pick],
            predicate_from(&seeds)
        );
        let q = parse_query(&sql);
        let plan = Binder::new(&PropFixture).bind_query(&q).unwrap().plan;
        let mut provider = MapProvider::new();
        provider.insert(EntityId(1), rows);
        let legacy = dt_exec::execute_rows(&plan, &provider).unwrap();
        let columnar =
            dt_exec::execute(&dt_plan::push_down_filters(&plan), &provider).unwrap();
        prop_assert_eq!(legacy, columnar, "diverged for: {}", sql);
    }
}
