//! Concurrency smoke test: the engine/session split must let N reader
//! sessions query while another session drives refreshes, with no
//! deadlocks and snapshot-consistent results.
//!
//! The invariant: `bal` holds pairs of rows whose `v` values sum to zero
//! per statement (each INSERT commits atomically), so `SELECT * FROM agg`
//! — a single-DT read, hence one consistent snapshot (§4) — must always
//! sum to zero, no matter how refreshes interleave.

use std::sync::atomic::{AtomicBool, Ordering};

use dt_common::{Duration, Timestamp, Value};
use dt_core::{DbConfig, Engine};

#[test]
fn readers_run_while_scheduler_refreshes() {
    let engine = Engine::new(DbConfig { validate_dvs: true, ..DbConfig::default() });
    engine.create_warehouse("wh", 4).unwrap();
    let admin = engine.session();
    admin.execute("CREATE TABLE bal (k INT, v INT)").unwrap();
    admin.execute("INSERT INTO bal VALUES (1, 100), (2, -100)").unwrap();
    admin
        .execute(
            "CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' WAREHOUSE = wh \
             AS SELECT k, sum(v) s FROM bal GROUP BY k",
        )
        .unwrap();

    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // N reader sessions, each its own thread and session handle.
        for reader in 0..4 {
            let engine = engine.clone();
            let done = &done;
            scope.spawn(move || {
                let session = engine.session_as(&format!("reader_{reader}"));
                let stmt = session
                    .prepare("SELECT s FROM agg WHERE s > ? OR s <= ?")
                    .unwrap();
                let mut queries = 0u64;
                while !done.load(Ordering::Relaxed) {
                    // Plain query: the whole DT, one snapshot. Sum is 0.
                    let total: i64 = session
                        .query("SELECT * FROM agg")
                        .unwrap()
                        .iter()
                        .map(|r| r.get(1).expect_int().unwrap())
                        .sum();
                    assert_eq!(total, 0, "snapshot tore in reader {reader}");
                    // Prepared query with bindings exercises the same read
                    // path through the statement cache.
                    let rows = stmt
                        .query(&[Value::Int(0), Value::Int(0)])
                        .unwrap();
                    let total: i64 =
                        rows.iter().map(|r| r.get(0).expect_int().unwrap()).sum();
                    assert_eq!(total, 0);
                    queries += 1;
                }
                assert!(queries > 0, "reader {reader} never ran");
            });
        }

        // Writer: DML + scheduler driving + manual refreshes, all under the
        // write lock, interleaving with the readers.
        let writer = engine.session();
        let mut t = Timestamp::EPOCH;
        for i in 0..30i64 {
            let v = 10 + i;
            writer
                .execute(&format!(
                    "INSERT INTO bal VALUES (1, {v}), (2, {})",
                    -v
                ))
                .unwrap();
            if i % 3 == 0 {
                writer.manual_refresh("agg").unwrap();
            } else {
                t = t.add(Duration::from_secs(60));
                engine.run_scheduler_until(t).unwrap();
            }
        }
        done.store(true, Ordering::Relaxed);
    });

    // Final state: everything drained, still balanced.
    let total: i64 = admin
        .query("SELECT * FROM agg")
        .unwrap()
        .iter()
        .map(|r| r.get(1).expect_int().unwrap())
        .sum();
    assert_eq!(total, 0);
    let failed = engine
        .refresh_log()
        .iter()
        .filter(|e| e.action == "failed")
        .count();
    assert_eq!(failed, 0);
}

#[test]
fn sessions_share_one_engine_but_keep_their_own_roles() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 1).unwrap();
    let owner = engine.session_as("owner");
    owner.execute("CREATE TABLE t (k INT)").unwrap();
    owner
        .execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t")
        .unwrap();

    // A concurrent session with a different role is denied OPERATE until
    // granted — role state is per-session, not process-global.
    let analyst = engine.session_as("analyst");
    let handle = std::thread::spawn(move || analyst.manual_refresh("d"));
    let err = handle.join().unwrap().unwrap_err();
    assert!(matches!(err, dt_common::DtError::AccessDenied { .. }));
    // The owner session is unaffected by the other session's role.
    assert!(owner.manual_refresh("d").is_ok());
    owner.grant("analyst", "d", dt_catalog::Privilege::Operate).unwrap();
    let analyst = engine.session_as("analyst");
    assert!(analyst.manual_refresh("d").is_ok());
}
