//! Concurrency smoke test: the engine/session split must let N reader
//! sessions query while another session drives refreshes, with no
//! deadlocks and snapshot-consistent results — and, since the MVCC read
//! path landed, readers must hold **no engine lock** during bind, plan,
//! and execute: a pinned [`dt_core::ReadSnapshot`] keeps answering even
//! while a writer sits inside the write lock mid-refresh.
//!
//! The invariant for the smoke test: `bal` holds pairs of rows whose `v`
//! values sum to zero per statement (each INSERT commits atomically), so
//! `SELECT * FROM agg` — a single-DT read, hence one consistent snapshot
//! (§4) — must always sum to zero, no matter how refreshes interleave.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;

use dt_common::{Duration, Timestamp, Value};
use dt_core::{DbConfig, Engine};

#[test]
fn readers_run_while_scheduler_refreshes() {
    let engine = Engine::new(DbConfig { validate_dvs: true, ..DbConfig::default() });
    engine.create_warehouse("wh", 4).unwrap();
    let admin = engine.session();
    admin.execute("CREATE TABLE bal (k INT, v INT)").unwrap();
    admin.execute("INSERT INTO bal VALUES (1, 100), (2, -100)").unwrap();
    admin
        .execute(
            "CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' WAREHOUSE = wh \
             AS SELECT k, sum(v) s FROM bal GROUP BY k",
        )
        .unwrap();

    let done = AtomicBool::new(false);
    let readers_started = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        // N reader sessions, each its own thread and session handle.
        for reader in 0..4 {
            let engine = engine.clone();
            let done = &done;
            let readers_started = &readers_started;
            scope.spawn(move || {
                let session = engine.session_as(&format!("reader_{reader}"));
                let stmt = session
                    .prepare("SELECT s FROM agg WHERE s > ? OR s <= ?")
                    .unwrap();
                readers_started.fetch_add(1, Ordering::Relaxed);
                let mut queries = 0u64;
                // Check `done` at the bottom so every reader completes at
                // least one full query cycle even under release-mode
                // scheduling on a single core.
                loop {
                    // Plain query: the whole DT, one snapshot. Sum is 0.
                    let total: i64 = session
                        .query("SELECT * FROM agg")
                        .unwrap()
                        .iter()
                        .map(|r| r.get(1).expect_int().unwrap())
                        .sum();
                    assert_eq!(total, 0, "snapshot tore in reader {reader}");
                    // Prepared query with bindings exercises the same read
                    // path through the statement cache.
                    let rows = stmt
                        .query(&[Value::Int(0), Value::Int(0)])
                        .unwrap();
                    let total: i64 =
                        rows.iter().map(|r| r.get(0).expect_int().unwrap()).sum();
                    assert_eq!(total, 0);
                    queries += 1;
                    if done.load(Ordering::Relaxed) {
                        break;
                    }
                }
                assert!(queries > 0, "reader {reader} never ran");
            });
        }

        // Writer: DML + scheduler driving + manual refreshes, all under the
        // write lock, interleaving with the readers. Wait for every reader
        // thread to be up first — in release mode the whole writer loop can
        // otherwise finish before a reader is even scheduled.
        while readers_started.load(Ordering::Relaxed) < 4 {
            std::thread::yield_now();
        }
        let writer = engine.session();
        let mut t = Timestamp::EPOCH;
        for i in 0..30i64 {
            let v = 10 + i;
            writer
                .execute(&format!(
                    "INSERT INTO bal VALUES (1, {v}), (2, {})",
                    -v
                ))
                .unwrap();
            if i % 3 == 0 {
                writer.manual_refresh("agg").unwrap();
            } else {
                t = t.add(Duration::from_secs(60));
                engine.run_scheduler_until(t).unwrap();
            }
        }
        done.store(true, Ordering::Relaxed);
    });

    // Final state: everything drained, still balanced.
    let total: i64 = admin
        .query("SELECT * FROM agg")
        .unwrap()
        .iter()
        .map(|r| r.get(1).expect_int().unwrap())
        .sum();
    assert_eq!(total, 0);
    let failed = engine.refresh_log().count_action("failed");
    assert_eq!(failed, 0);
}

/// Snapshot isolation: a reader holding a [`dt_core::ReadSnapshot`]
/// re-reads byte-identical results while another session commits DML and
/// drives refreshes; fresh reads see the new state.
#[test]
fn pinned_snapshot_rereads_identically_under_concurrent_writes() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 2).unwrap();
    let admin = engine.session();
    admin.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    admin.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    admin
        .execute(
            "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
             AS SELECT k, sum(v) s FROM t GROUP BY k",
        )
        .unwrap();

    let snap = admin.snapshot();
    let table_before = snap.query_sorted("SELECT * FROM t").unwrap();
    let dt_before = snap.query_sorted("SELECT * FROM d").unwrap();
    let show_before = snap
        .execute_read("SHOW DYNAMIC TABLES")
        .unwrap()
        .try_rows()
        .unwrap();
    assert_eq!(table_before.len(), 2);
    assert_eq!(dt_before.len(), 2);

    // Another session commits DML, refreshes, and even drops/creates DDL.
    let writer = engine.session();
    writer.execute("INSERT INTO t VALUES (3, 30)").unwrap();
    writer.execute("DELETE FROM t WHERE k = 1").unwrap();
    writer.manual_refresh("d").unwrap();
    engine
        .run_scheduler_until(engine.now().add(Duration::from_secs(120)))
        .unwrap();
    writer.execute("CREATE TABLE unrelated (x INT)").unwrap();

    // The pinned snapshot re-reads byte-identical results...
    assert_eq!(snap.query_sorted("SELECT * FROM t").unwrap(), table_before);
    assert_eq!(snap.query_sorted("SELECT * FROM d").unwrap(), dt_before);
    assert_eq!(
        snap.execute_read("SHOW DYNAMIC TABLES")
            .unwrap()
            .try_rows()
            .unwrap(),
        show_before
    );
    // ...its frozen catalog doesn't even know about post-capture DDL...
    assert!(snap.query("SELECT * FROM unrelated").is_err());
    // ...while fresh session reads see the new state.
    let table_now = admin.query_sorted("SELECT * FROM t").unwrap();
    assert_ne!(table_now, table_before);
    assert_eq!(table_now.len(), 2);
    assert_ne!(admin.query_sorted("SELECT * FROM d").unwrap(), dt_before);
}

/// The acceptance check for the MVCC read path: a long-running reader
/// that overlaps an in-flight refresh completes without ever waiting for
/// the write lock. A writer thread takes the engine write lock, runs a
/// real refresh inside it, and then *keeps holding the lock* until the
/// reader has finished a full bind+plan+execute cycle against its pinned
/// snapshot — under the pre-MVCC read path (reads under the engine read
/// lock) this test would deadlock.
#[test]
fn long_reader_overlapping_a_refresh_never_waits_for_the_write_lock() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 1).unwrap();
    let session = engine.session();
    session.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    session
        .execute("INSERT INTO t VALUES (1, 5), (2, 7), (3, 9)")
        .unwrap();
    session
        .execute(
            "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
             AS SELECT k, sum(v) s FROM t GROUP BY k",
        )
        .unwrap();
    // Stage new data so the in-lock refresh below has real work to do.
    session.execute("INSERT INTO t VALUES (1, 100)").unwrap();

    let snap = session.snapshot();
    let expected = snap.query_sorted("SELECT * FROM d").unwrap();
    let stale_t = snap.query_sorted("SELECT * FROM t").unwrap();

    let (locked_tx, locked_rx) = mpsc::channel::<()>();
    let (done_tx, done_rx) = mpsc::channel::<()>();
    std::thread::scope(|scope| {
        let writer_engine = engine.clone();
        scope.spawn(move || {
            writer_engine.inspect_mut(|state| {
                // A real refresh runs inside the write lock...
                state.manual_refresh("d", "sysadmin").unwrap();
                locked_tx.send(()).unwrap();
                // ...and the lock stays held until the reader reports in
                // (bounded wait so a reader failure can't hang the test).
                let _ = done_rx.recv_timeout(std::time::Duration::from_secs(60));
            });
        });

        // Wait until the writer provably holds the write lock.
        locked_rx.recv().unwrap();
        // Long-running reader: many full bind+plan+execute cycles, plus
        // EXPLAIN and SHOW, all against the pinned snapshot. If any of
        // them touched the engine lock this would deadlock (the writer
        // won't release until we finish).
        for _ in 0..25 {
            assert_eq!(snap.query_sorted("SELECT * FROM d").unwrap(), expected);
            assert_eq!(snap.query_sorted("SELECT * FROM t").unwrap(), stale_t);
        }
        snap.execute_read("SHOW DYNAMIC TABLES").unwrap();
        snap.execute_read("EXPLAIN SELECT * FROM d").unwrap();
        assert!(snap
            .query_isolation_level("SELECT * FROM d")
            .is_ok());
        done_tx.send(()).unwrap();
    });

    // With the lock released, a fresh read sees the refreshed DT.
    let refreshed = session.query_sorted("SELECT * FROM d").unwrap();
    assert_ne!(refreshed, expected);
}

#[test]
fn sessions_share_one_engine_but_keep_their_own_roles() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 1).unwrap();
    let owner = engine.session_as("owner");
    owner.execute("CREATE TABLE t (k INT)").unwrap();
    owner
        .execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t")
        .unwrap();

    // A concurrent session with a different role is denied OPERATE until
    // granted — role state is per-session, not process-global.
    let analyst = engine.session_as("analyst");
    let handle = std::thread::spawn(move || analyst.manual_refresh("d"));
    let err = handle.join().unwrap().unwrap_err();
    assert!(matches!(err, dt_common::DtError::AccessDenied { .. }));
    // The owner session is unaffected by the other session's role.
    assert!(owner.manual_refresh("d").is_ok());
    owner.grant("analyst", "d", dt_catalog::Privilege::Operate).unwrap();
    let analyst = engine.session_as("analyst");
    assert!(analyst.manual_refresh("d").is_ok());
}
