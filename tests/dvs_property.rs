//! Property-based DVS validation (§6.1 level 4):
//!
//! > "Because of delayed-view semantics with snapshot isolation, we have an
//! > extremely strong assertion we can make for most DTs: if you run the
//! > defining query as of the data timestamp, you should get the same
//! > result as in the DT."
//!
//! These tests generate random DML sequences against random DT definitions
//! drawn from the incrementally maintainable operator set, refresh after
//! every batch with `validate_dvs` enabled (which re-checks the invariant
//! inside the refresh engine), and additionally compare the final contents
//! against a from-scratch evaluation.

use dt_core::{DbConfig, Engine, Session};
use proptest::prelude::*;

/// The DT definitions exercised — one per §3.3.2 operator family.
const QUERIES: &[&str] = &[
    // projection + filter
    "SELECT k, v * 2 d FROM t1 WHERE v > 10",
    // inner join
    "SELECT a.k, a.v, b.w FROM t1 a JOIN t2 b ON a.k = b.k",
    // left outer join
    "SELECT a.k, a.v, b.w FROM t1 a LEFT JOIN t2 b ON a.k = b.k",
    // full outer join
    "SELECT a.v, b.w FROM t1 a FULL OUTER JOIN t2 b ON a.k = b.k",
    // union all
    "SELECT k FROM t1 UNION ALL SELECT k FROM t2",
    // distinct
    "SELECT DISTINCT k FROM t1",
    // grouped aggregation (all functions)
    "SELECT k, count(*) c, sum(v) s, min(v) lo, max(v) hi, avg(v) m FROM t1 GROUP BY k",
    // count_if + having
    "SELECT k, count_if(v > 50) big FROM t1 GROUP BY k HAVING count(*) > 0",
    // distinct aggregation
    "SELECT k, count(DISTINCT v) dv FROM t1 GROUP BY k",
    // partitioned window function
    "SELECT k, v, sum(v) OVER (PARTITION BY k ORDER BY v) run FROM t1",
    // join + aggregation (Listing 1 shape)
    "SELECT a.k, count(*) n, sum(b.w) tw FROM t1 a JOIN t2 b ON a.k = b.k GROUP BY a.k",
    // nested subquery
    "SELECT k, d FROM (SELECT k, v - 1 d FROM t1 WHERE v > 0) x WHERE d < 90",
];

/// One random DML operation.
#[derive(Debug, Clone)]
enum Dml {
    Insert1 { k: i64, v: i64 },
    Insert2 { k: i64, w: i64 },
    Delete1 { k: i64 },
    Delete2 { k: i64 },
    Update1 { k: i64, v: i64 },
}

fn dml_strategy() -> impl Strategy<Value = Dml> {
    prop_oneof![
        (0..6i64, 0..100i64).prop_map(|(k, v)| Dml::Insert1 { k, v }),
        (0..6i64, 0..100i64).prop_map(|(k, w)| Dml::Insert2 { k, w }),
        (0..6i64).prop_map(|k| Dml::Delete1 { k }),
        (0..6i64).prop_map(|k| Dml::Delete2 { k }),
        (0..6i64, 0..100i64).prop_map(|(k, v)| Dml::Update1 { k, v }),
    ]
}

fn apply(db: &Session, op: &Dml) {
    let sql = match op {
        Dml::Insert1 { k, v } => format!("INSERT INTO t1 VALUES ({k}, {v})"),
        Dml::Insert2 { k, w } => format!("INSERT INTO t2 VALUES ({k}, {w})"),
        Dml::Delete1 { k } => format!("DELETE FROM t1 WHERE k = {k}"),
        Dml::Delete2 { k } => format!("DELETE FROM t2 WHERE k = {k}"),
        Dml::Update1 { k, v } => format!("UPDATE t1 SET v = {v} WHERE k = {k}"),
    };
    db.execute(&sql).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        .. ProptestConfig::default()
    })]

    /// The §6.1 randomized test: for every query family and any DML
    /// sequence, every incremental refresh upholds DVS.
    #[test]
    fn dvs_holds_for_random_dml(
        query_idx in 0..QUERIES.len(),
        batches in prop::collection::vec(
            prop::collection::vec(dml_strategy(), 1..6),
            1..5,
        ),
        seed_rows in prop::collection::vec((0..6i64, 0..100i64), 0..8),
    ) {
        // The invariant check lives in the engine.
        let cfg = DbConfig { validate_dvs: true, ..DbConfig::default() };
        let eng = Engine::new(cfg);
        let db = eng.session();
        eng.create_warehouse("wh", 2).unwrap();
        db.execute("CREATE TABLE t1 (k INT, v INT)").unwrap();
        db.execute("CREATE TABLE t2 (k INT, w INT)").unwrap();
        for (k, v) in &seed_rows {
            db.execute(&format!("INSERT INTO t1 VALUES ({k}, {v})")).unwrap();
            db.execute(&format!("INSERT INTO t2 VALUES ({k}, {})", v + 1)).unwrap();
        }
        let sql = format!(
            "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS {}",
            QUERIES[query_idx]
        );
        db.execute(&sql).unwrap();
        let mode = eng.inspect(|s| {
            s.catalog().resolve("d").unwrap().as_dt().unwrap().refresh_mode
        });
        prop_assert_eq!(
            mode,
            dt_catalog::RefreshMode::Incremental,
            "query {} must be incremental", query_idx
        );

        for batch in &batches {
            for op in batch {
                apply(&db, op);
            }
            // Refresh; validate_dvs re-checks the invariant internally and
            // turns any violation into an Internal error, failing the test.
            db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
            let log = eng.refresh_log();
            prop_assert_ne!(log.last().unwrap().action.to_string(), "failed");
        }

        // Belt and braces: final contents equal a from-scratch evaluation.
        let mut stored = db.query_sorted("SELECT * FROM d").unwrap();
        let mut fresh = db.query_sorted(QUERIES[query_idx]).unwrap();
        stored.sort();
        fresh.sort();
        prop_assert_eq!(stored, fresh);
    }

    /// Skipped refresh intervals compose: refreshing once over N batches of
    /// DML gives the same contents as refreshing after each batch.
    #[test]
    fn interval_composition(
        ops in prop::collection::vec(dml_strategy(), 1..20),
        split in 1..19usize,
    ) {
        let build = |refresh_points: &[usize], ops: &[Dml]| {
            let cfg = DbConfig { validate_dvs: true, ..DbConfig::default() };
            let eng = Engine::new(cfg);
            let db = eng.session();
            eng.create_warehouse("wh", 2).unwrap();
            db.execute("CREATE TABLE t1 (k INT, v INT)").unwrap();
            db.execute("CREATE TABLE t2 (k INT, w INT)").unwrap();
            db.execute(
                "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
                 AS SELECT k, count(*) c, sum(v) s FROM t1 GROUP BY k",
            )
            .unwrap();
            for (i, op) in ops.iter().enumerate() {
                apply(&db, op);
                if refresh_points.contains(&i) {
                    db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
                }
            }
            db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
            db.query_sorted("SELECT * FROM d").unwrap()
        };
        let split = split.min(ops.len() - 1);
        let once = build(&[], &ops);
        let twice = build(&[split], &ops);
        prop_assert_eq!(once, twice);
    }
}
