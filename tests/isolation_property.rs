//! Property tests for the DVS isolation theory (§4).
//!
//! * **Theorem 1 (transaction invariance)**: moving any derivation into any
//!   transaction leaves the DSG's dependency structure unchanged.
//! * **Corollary 2 (encapsulation)**: removing an encapsulated derivation
//!   leaves the dependency structure unchanged.
//! * Serial histories are PL-3; derivations never *weaken* a history's
//!   phenomena-freedom on their own.

use dt_isolation::{analyze, Dsg, History, IsolationLevel, VersionRef};
use proptest::prelude::*;

/// A random history generator: a mix of writes, reads, and derivations
/// over a small object space, with all transactions committed.
#[derive(Debug, Clone)]
enum HOp {
    Write { txn: u32, obj: usize, ver: u32 },
    Read { txn: u32, obj: usize },
    Derive { txn: u32, ver: u32, src_obj: usize },
}

fn hop_strategy() -> impl Strategy<Value = HOp> {
    prop_oneof![
        (1..6u32, 0..3usize, 1..5u32).prop_map(|(txn, obj, ver)| HOp::Write { txn, obj, ver }),
        (1..6u32, 0..5usize).prop_map(|(txn, obj)| HOp::Read { txn, obj }),
        (1..6u32, 1..5u32, 0..3usize).prop_map(|(txn, ver, src_obj)| HOp::Derive {
            txn,
            ver,
            src_obj
        }),
    ]
}

const BASE_OBJECTS: [&str; 3] = ["x", "y", "z"];
const DERIVED_OBJECTS: [&str; 2] = ["dx", "dy"];

/// Materialize a history from ops, tracking installed versions so reads
/// reference real versions.
fn build(ops: &[HOp]) -> History {
    let mut h = History::new();
    // Latest installed version per object name.
    let mut latest: std::collections::HashMap<String, u32> = std::collections::HashMap::new();
    let mut derived_round = 0u32;
    for op in ops {
        match op {
            HOp::Write { txn, obj, ver } => {
                let name = BASE_OBJECTS[*obj];
                let prev = latest.get(name).copied().unwrap_or(0);
                let v = prev + ver; // strictly increasing versions
                h.write(*txn, name, v);
                latest.insert(name.to_string(), v);
            }
            HOp::Read { txn, obj } => {
                // Read any installed object (base or derived), if present.
                let all: Vec<&str> = BASE_OBJECTS
                    .iter()
                    .chain(DERIVED_OBJECTS.iter())
                    .copied()
                    .collect();
                let name = all[*obj % all.len()];
                if let Some(v) = latest.get(name) {
                    h.read(*txn, name, *v);
                }
            }
            HOp::Derive { txn, ver, src_obj } => {
                let src = BASE_OBJECTS[*src_obj];
                if let Some(sv) = latest.get(src).copied() {
                    let dname = DERIVED_OBJECTS[(derived_round as usize) % 2];
                    let prev = latest.get(dname).copied().unwrap_or(0);
                    let dv = prev + ver;
                    h.derive(*txn, (dname, dv), &[(src, sv)]);
                    latest.insert(dname.to_string(), dv);
                    derived_round += 1;
                }
            }
        }
    }
    for t in 1..6 {
        h.commit(t);
    }
    h
}

fn derived_versions(h: &History) -> Vec<VersionRef> {
    h.derivation_sources().keys().cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn theorem_1_invariance_over_random_histories(
        ops in prop::collection::vec(hop_strategy(), 1..25),
        target_txn in 1..8u32,
    ) {
        let h = build(&ops);
        let base = Dsg::build(&h).structure();
        for d in derived_versions(&h) {
            let moved = h.move_derivation(&d, target_txn).unwrap();
            prop_assert_eq!(
                Dsg::build(&moved).structure(),
                base.clone(),
                "moving {:?} into T{} changed dependencies", d, target_txn
            );
        }
    }

    #[test]
    fn corollary_2_encapsulated_removal(ops in prop::collection::vec(hop_strategy(), 1..25)) {
        let h = build(&ops);
        let base = Dsg::build(&h).structure();
        for d in derived_versions(&h) {
            if h.is_encapsulated(&d) {
                let without = h.remove_derivation(&d);
                prop_assert_eq!(Dsg::build(&without).structure(), base.clone());
            }
        }
    }

    /// A serial history (each transaction runs to completion before the
    /// next starts, reading only latest versions) is always PL-3, with or
    /// without derivations.
    #[test]
    fn serial_histories_are_serializable(n_txns in 1..6u32) {
        let mut h = History::new();
        let mut ver = 0u32;
        for t in 1..=n_txns {
            if ver > 0 {
                h.read(t, "x", ver);
            }
            ver += 1;
            h.write(t, "x", ver);
            h.derive(t, ("dx", ver), &[("x", ver)]);
            h.read(t, "dx", ver);
            h.commit(t);
        }
        let r = analyze(&h);
        prop_assert_eq!(r.level, IsolationLevel::Pl3);
    }

    /// Adding a derivation + a read of it in the *writing* transaction
    /// never introduces phenomena (it is encapsulated).
    #[test]
    fn encapsulated_derivations_are_harmless(ops in prop::collection::vec(hop_strategy(), 1..20)) {
        let h = build(&ops);
        let before = analyze(&h).phenomena.len();
        let mut h2 = h.clone();
        // T1's own private derivation of its own write.
        h2.write(1, "private", 1);
        h2.derive(1, ("dprivate", 1), &[("private", 1)]);
        h2.read(1, "dprivate", 1);
        let after = analyze(&h2).phenomena.len();
        prop_assert_eq!(before, after);
    }
}
