//! End-to-end integration tests: the full Dynamic Table lifecycle across
//! catalog, storage, transactions, planning, execution, IVM, and
//! scheduling.

use dt_common::{row, Duration, Row, Timestamp, Value};
use dt_core::{DbConfig, Engine, Session};

fn setup() -> (Engine, Session) {
    // §6.1 level-4 validation on every refresh.
    let cfg = DbConfig { validate_dvs: true, ..DbConfig::default() };
    let eng = Engine::new(cfg);
    eng.create_warehouse("wh", 4).unwrap();
    let db = eng.session();
    (eng, db)
}

#[test]
fn create_insert_refresh_query() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (1, 5)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, sum(v) s FROM t GROUP BY k",
    )
    .unwrap();
    let rows = db.query_sorted("SELECT * FROM agg").unwrap();
    assert_eq!(rows, vec![row!(1i64, 15i64), row!(2i64, 20i64)]);

    // New DML is invisible until a refresh (delayed view semantics).
    db.execute("INSERT INTO t VALUES (2, 100)").unwrap();
    let rows = db.query_sorted("SELECT * FROM agg").unwrap();
    assert_eq!(rows, vec![row!(1i64, 15i64), row!(2i64, 20i64)]);

    db.execute("ALTER DYNAMIC TABLE agg REFRESH").unwrap();
    let rows = db.query_sorted("SELECT * FROM agg").unwrap();
    assert_eq!(rows, vec![row!(1i64, 15i64), row!(2i64, 120i64)]);
    // That refresh was incremental.
    let log = eng.refresh_log();
    assert_eq!(log.last().unwrap().action, "incremental");
}

#[test]
fn updates_and_deletes_propagate_incrementally() {
    let (_eng, db) = setup();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE f TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, v FROM t WHERE v >= 15",
    )
    .unwrap();
    db.execute("UPDATE t SET v = v + 100 WHERE k = 1").unwrap();
    db.execute("DELETE FROM t WHERE k = 2").unwrap();
    db.execute("ALTER DYNAMIC TABLE f REFRESH").unwrap();
    let rows = db.query_sorted("SELECT * FROM f").unwrap();
    assert_eq!(rows, vec![row!(1i64, 110i64), row!(3i64, 30i64)]);
}

#[test]
fn stacked_dynamic_tables_share_data_timestamps() {
    let (_eng, db) = setup();
    db.execute("CREATE TABLE events (id INT, kind STRING, amount INT)")
        .unwrap();
    db.execute(
        "INSERT INTO events VALUES (1, 'a', 10), (2, 'b', 20), (3, 'a', 30)",
    )
    .unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE filtered TARGET_LAG = DOWNSTREAM WAREHOUSE = wh \
         AS SELECT id, kind, amount FROM events WHERE amount > 5",
    )
    .unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE by_kind TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT kind, count(*) n, sum(amount) total FROM filtered GROUP BY kind",
    )
    .unwrap();
    let rows = db.query_sorted("SELECT * FROM by_kind").unwrap();
    assert_eq!(
        rows,
        vec![row!("a", 2i64, 40i64), row!("b", 1i64, 20i64)]
    );
    // Refreshing the downstream DT refreshes the upstream chain at the
    // same data timestamp (§3.1.2/§3.2).
    db.execute("INSERT INTO events VALUES (4, 'b', 40)").unwrap();
    db.execute("ALTER DYNAMIC TABLE by_kind REFRESH").unwrap();
    let rows = db.query_sorted("SELECT * FROM by_kind").unwrap();
    assert_eq!(
        rows,
        vec![row!("a", 2i64, 40i64), row!("b", 2i64, 60i64)]
    );
}

#[test]
fn listing_1_train_pipeline() {
    // The paper's Listing 1, adapted to our schema model.
    let (eng, db) = setup();
    eng.create_warehouse("trains_wh", 2).unwrap();
    db.execute("CREATE TABLE trains (id INT)").unwrap();
    db.execute(
        "CREATE TABLE train_events (train_id INT, type STRING, time TIMESTAMP, schedule_id INT)",
    )
    .unwrap();
    db.execute("CREATE TABLE schedule (id INT, expected_arrival_time TIMESTAMP)")
        .unwrap();
    db.execute("INSERT INTO trains VALUES (1), (2)").unwrap();
    db.execute("INSERT INTO schedule VALUES (10, 1000000000), (11, 2000000000)")
        .unwrap();
    // Train 1 arrives 11 minutes late; train 2 on time.
    db.execute(
        "INSERT INTO train_events VALUES \
         (1, 'ARRIVAL', 1660000000, 10), \
         (2, 'ARRIVAL', 2000000000, 11), \
         (1, 'DEPARTURE', 999, 10)",
    )
    .unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE train_arrivals \
         TARGET_LAG = DOWNSTREAM \
         WARHEOUSE = trains_wh \
         AS SELECT t.id train_id, e.time arrival_time, e.schedule_id schedule_id \
         FROM train_events e JOIN trains t ON e.train_id = t.id \
         WHERE e.type = 'ARRIVAL'",
    )
    .unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE delayed_trains \
         TARGET_LAG = '1 minute' \
         WAREHOUSE = trains_wh \
         AS SELECT train_id, \
            date_trunc(hour, s.expected_arrival_time) hour, \
            count_if(arrival_time - s.expected_arrival_time > INTERVAL '10 minutes') num_delays \
         FROM train_arrivals a JOIN schedule s ON a.schedule_id = s.id \
         GROUP BY ALL",
    )
    .unwrap();
    let rows = db.query_sorted("SELECT train_id, num_delays FROM delayed_trains").unwrap();
    assert_eq!(rows, vec![row!(1i64, 1i64), row!(2i64, 0i64)]);
    // Both DTs bound incrementally.
    for name in ["train_arrivals", "delayed_trains"] {
        let mode = eng.inspect(|s| {
            s.catalog().resolve(name).unwrap().as_dt().unwrap().refresh_mode
        });
        assert_eq!(mode, dt_catalog::RefreshMode::Incremental);
    }
}

#[test]
fn full_refresh_mode_for_non_differentiable_queries() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)").unwrap();
    // ORDER BY + LIMIT is not incrementally maintainable → AUTO picks FULL.
    db.execute(
        "CREATE DYNAMIC TABLE top2 TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, v FROM t ORDER BY v DESC LIMIT 2",
    )
    .unwrap();
    let mode = eng.inspect(|s| {
        s.catalog().resolve("top2").unwrap().as_dt().unwrap().refresh_mode
    });
    assert_eq!(mode, dt_catalog::RefreshMode::Full);
    db.execute("INSERT INTO t VALUES (4, 99)").unwrap();
    db.execute("ALTER DYNAMIC TABLE top2 REFRESH").unwrap();
    let rows = db.query_sorted("SELECT v FROM top2").unwrap();
    assert_eq!(rows, vec![row!(30i64), row!(99i64)]);
    assert_eq!(eng.refresh_log().last().unwrap().action, "full");
    // Requesting INCREMENTAL explicitly fails.
    let err = db
        .execute(
            "CREATE DYNAMIC TABLE bad TARGET_LAG = '1 minute' WAREHOUSE = wh \
             REFRESH_MODE = INCREMENTAL AS SELECT k FROM t ORDER BY k LIMIT 1",
        )
        .unwrap_err();
    assert!(matches!(err, dt_common::DtError::Unsupported(_)));
}

#[test]
fn no_data_refresh_when_sources_unchanged() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k FROM t",
    )
    .unwrap();
    db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
    assert_eq!(eng.refresh_log().last().unwrap().action, "no_data");
    // The data timestamp still advanced.
    eng.inspect(|s| {
        let id = s.catalog().resolve("d").unwrap().id;
        let st = s.scheduler().state(id).unwrap();
        assert_eq!(st.action_counts.get("no_data"), Some(&1));
    });
}

#[test]
fn scheduled_refreshes_maintain_lag() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, sum(v) s FROM t GROUP BY k",
    )
    .unwrap();
    // Simulate 10 minutes with periodic DML.
    for i in 0..10 {
        eng.run_scheduler_until(Timestamp::from_secs((i + 1) * 60)).unwrap();
        db.execute(&format!("INSERT INTO t VALUES (1, {i})")).unwrap();
    }
    eng.run_scheduler_until(Timestamp::from_secs(660)).unwrap();
    let log = eng.refresh_log().entries();
    let scheduled: Vec<_> = log.iter().filter(|e| !e.initial).collect();
    assert!(scheduled.len() >= 10, "refreshes: {}", scheduled.len());
    assert!(scheduled.iter().any(|e| e.action == "incremental"));
    // The DT caught up with all DML after the last refresh window.
    db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
    let rows = db.query_sorted("SELECT s FROM d").unwrap();
    let total: i64 = 1 + (0..10).sum::<i64>();
    assert_eq!(rows, vec![row!(total)]);
    // Lag samples never exceeded the 1-minute target by much (the sawtooth
    // peaks stay near period + duration).
    let max_peak = eng.inspect(|s| {
        let id = s.catalog().resolve("d").unwrap().id;
        s.scheduler()
            .state(id)
            .unwrap()
            .lag_samples
            .iter()
            .filter(|s| s.peak)
            .map(|s| s.lag)
            .max()
            .unwrap()
    });
    assert!(
        max_peak <= Duration::from_secs(120),
        "max peak lag {max_peak}"
    );
}

#[test]
fn consecutive_failures_auto_suspend_and_resume_recovers() {
    let cfg = DbConfig { error_suspend_threshold: 3, ..DbConfig::default() };
    let eng = Engine::new(cfg);
    let db = eng.session();
    eng.create_warehouse("wh", 1).unwrap();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, 100 / v q FROM t",
    )
    .unwrap();
    // Poison the data: division by zero on refresh.
    db.execute("INSERT INTO t VALUES (2, 0)").unwrap();
    eng.run_scheduler_until(Timestamp::from_secs(600)).unwrap();
    eng.inspect(|s| {
        let id = s.catalog().resolve("d").unwrap().id;
        assert!(s.scheduler().state(id).unwrap().suspended);
        assert_eq!(
            s.catalog().get(id).unwrap().as_dt().unwrap().state,
            dt_catalog::DtState::SuspendedOnErrors
        );
    });
    let failed = eng.refresh_log().count_action("failed");
    assert_eq!(failed, 3);
    // Fix the data and resume: refreshes pick up from where they left off.
    db.execute("DELETE FROM t WHERE v = 0").unwrap();
    db.execute("ALTER DYNAMIC TABLE d RESUME").unwrap();
    eng.run_scheduler_until(Timestamp::from_secs(700)).unwrap();
    let rows = db.query_sorted("SELECT q FROM d").unwrap();
    assert_eq!(rows, vec![row!(100i64)]);
}

#[test]
fn drop_undrop_upstream_recovers_automatically() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k FROM t",
    )
    .unwrap();
    // Upstream DDL takes precedence over downstream (§3.4): the drop
    // succeeds and the DT's refreshes fail afterwards.
    db.execute("DROP TABLE t").unwrap();
    let err = db.execute("ALTER DYNAMIC TABLE d REFRESH");
    assert!(err.is_err() || eng.refresh_log().last().unwrap().action == "failed");
    // UNDROP: refreshes resume without issue.
    db.execute("UNDROP TABLE t").unwrap();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
    let rows = db.query_sorted("SELECT k FROM d").unwrap();
    assert_eq!(rows, vec![row!(1i64), row!(2i64)]);
}

#[test]
fn replacing_upstream_forces_reinitialize() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k FROM t",
    )
    .unwrap();
    db.execute("CREATE OR REPLACE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
    assert_eq!(eng.refresh_log().last().unwrap().action, "reinitialize");
    let rows = db.query_sorted("SELECT k FROM d").unwrap();
    assert_eq!(rows, vec![row!(7i64)]);
}

#[test]
fn isolation_levels_per_query_shape() {
    let (_eng, db) = setup();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d1 TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d2 TARGET_LAG = '1 hour' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    // Single DT → snapshot isolation (reported as PL-3 here since a single
    // snapshot read admits no phenomena).
    let l1 = db.query_isolation_level("SELECT * FROM d1").unwrap();
    assert_eq!(l1, dt_isolation::IsolationLevel::Pl3);
    // Joining two DTs whose data timestamps may differ → Read Committed.
    let l2 = db
        .query_isolation_level("SELECT * FROM d1 a JOIN d2 b ON a.k = b.k")
        .unwrap();
    assert_eq!(l2, dt_isolation::IsolationLevel::Pl2);
    // DT joined with a base table → Read Committed.
    let l3 = db
        .query_isolation_level("SELECT * FROM d1 a JOIN t ON a.k = t.k")
        .unwrap();
    assert_eq!(l3, dt_isolation::IsolationLevel::Pl2);
}

#[test]
fn time_travel_reads_past_versions() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    eng.clock().advance(Duration::from_secs(100));
    let before = eng.now();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    let rows = db.query_at("SELECT * FROM t", before).unwrap().into_rows();
    assert_eq!(rows, vec![row!(1i64)]);
    let rows = db.query_sorted("SELECT * FROM t").unwrap();
    assert_eq!(rows.len(), 2);
}

#[test]
fn rbac_operate_required_for_manual_refresh() {
    let eng = Engine::new(DbConfig::default());
    // Session-scoped roles: the creating session owns what it creates.
    let db = eng.session_as("owner_role");
    eng.create_warehouse("wh", 1).unwrap();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    // Owner can refresh.
    assert!(db.manual_refresh("d").is_ok());
    // Another role cannot until granted OPERATE.
    db.set_role("analyst");
    let err = db.manual_refresh("d").unwrap_err();
    assert!(matches!(err, dt_common::DtError::AccessDenied { .. }));
    db.grant("analyst", "d", dt_catalog::Privilege::Operate).unwrap();
    assert!(db.manual_refresh("d").is_ok());
}

#[test]
fn window_function_dt_maintains_incrementally() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (grp INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (1, 20), (2, 5)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE w TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT grp, v, sum(v) OVER (PARTITION BY grp ORDER BY v) run FROM t",
    )
    .unwrap();
    db.execute("INSERT INTO t VALUES (1, 30)").unwrap();
    db.execute("ALTER DYNAMIC TABLE w REFRESH").unwrap();
    assert_eq!(eng.refresh_log().last().unwrap().action, "incremental");
    let rows = db.query_sorted("SELECT grp, v, run FROM w").unwrap();
    assert_eq!(
        rows,
        vec![
            row!(1i64, 10i64, 10i64),
            row!(1i64, 20i64, 30i64),
            row!(1i64, 30i64, 60i64),
            row!(2i64, 5i64, 5i64),
        ]
    );
}

#[test]
fn outer_join_dt_with_both_strategies() {
    for strategy in [
        dt_ivm::OuterJoinStrategy::Direct,
        dt_ivm::OuterJoinStrategy::NaiveRewrite,
    ] {
        let cfg = DbConfig { validate_dvs: true, outer_join: strategy, ..DbConfig::default() };
        let eng = Engine::new(cfg);
        let db = eng.session();
        eng.create_warehouse("wh", 2).unwrap();
        db.execute("CREATE TABLE l (k INT, v INT)").unwrap();
        db.execute("CREATE TABLE r (k INT, w INT)").unwrap();
        db.execute("INSERT INTO l VALUES (1, 10), (2, 20)").unwrap();
        db.execute("INSERT INTO r VALUES (1, 100)").unwrap();
        db.execute(
            "CREATE DYNAMIC TABLE oj TARGET_LAG = '1 minute' WAREHOUSE = wh \
             AS SELECT l.k, l.v, r.w FROM l LEFT JOIN r ON l.k = r.k",
        )
        .unwrap();
        // A matching row arrives: (2,20,NULL) must become (2,20,200).
        db.execute("INSERT INTO r VALUES (2, 200)").unwrap();
        db.execute("ALTER DYNAMIC TABLE oj REFRESH").unwrap();
        let rows = db.query_sorted("SELECT * FROM oj").unwrap();
        assert_eq!(
            rows,
            vec![row!(1i64, 10i64, 100i64), row!(2i64, 20i64, 200i64)],
            "strategy {strategy:?}"
        );
    }
}

#[test]
fn querying_uninitialized_dt_errors() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         INITIALIZE = ON_SCHEDULE AS SELECT k FROM t",
    )
    .unwrap();
    let err = db.query("SELECT * FROM d").unwrap_err();
    assert!(matches!(err, dt_common::DtError::NotInitialized(_)));
    // The simulation driver initializes it.
    eng.run_scheduler_until(Timestamp::from_secs(120)).unwrap();
    assert!(db.query("SELECT * FROM d").is_ok());
}

#[test]
fn union_all_and_distinct_dts() {
    let (_eng, db) = setup();
    db.execute("CREATE TABLE a (k INT)").unwrap();
    db.execute("CREATE TABLE b (k INT)").unwrap();
    db.execute("INSERT INTO a VALUES (1), (2)").unwrap();
    db.execute("INSERT INTO b VALUES (2), (3)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE u TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT DISTINCT k FROM (SELECT k FROM a UNION ALL SELECT k FROM b) x",
    )
    .unwrap();
    db.execute("INSERT INTO a VALUES (3), (4)").unwrap();
    db.execute("ALTER DYNAMIC TABLE u REFRESH").unwrap();
    let rows = db.query_sorted("SELECT k FROM u").unwrap();
    assert_eq!(rows, vec![row!(1i64), row!(2i64), row!(3i64), row!(4i64)]);
}

#[test]
fn view_between_table_and_dt() {
    let (eng, db) = setup();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 10), (2, 0)").unwrap();
    db.execute("CREATE VIEW nonzero AS SELECT k, v FROM t WHERE v > 0").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, v FROM nonzero",
    )
    .unwrap();
    let rows = db.query_sorted("SELECT * FROM d").unwrap();
    assert_eq!(rows, vec![row!(1i64, 10i64)]);
    // The DT depends on the *table* through the view.
    eng.inspect(|s| {
        let id = s.catalog().resolve("d").unwrap().id;
        let t = s.catalog().resolve("t").unwrap().id;
        assert_eq!(s.catalog().upstream_of(id), vec![t]);
    });
}

#[test]
fn null_handling_in_dt_payloads() {
    let (_eng, db) = setup();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, NULL), (NULL, 5)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, v FROM t",
    )
    .unwrap();
    let rows = db.query_sorted("SELECT * FROM d").unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows
        .iter()
        .any(|r| r.get(0).is_null() && r.get(1) == &Value::Int(5)));
    // Incremental delete of a NULL-bearing row.
    db.execute("DELETE FROM t WHERE v = 5").unwrap();
    db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
    let rows = db.query_sorted("SELECT * FROM d").unwrap();
    assert_eq!(rows, vec![Row::new(vec![Value::Int(1), Value::Null])]);
}
