//! The pessimistic lock manager and adaptive concurrency control, end to
//! end: FIFO wait-queue fairness, lock timeouts that leak no admission
//! state, the deadlock backstop on mixed-mode cycles, adaptive mode flips
//! with hysteresis, `SELECT ... FOR UPDATE`, and DSG certification that
//! mixed optimistic/pessimistic histories stay free of the G0/G1
//! phenomena.

use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use dynamic_tables::core::{is_serialization_conflict, DbConfig, Engine};
use dynamic_tables::isolation::{analyze, History};
use dt_common::EntityId;

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..5000 {
        if cond() {
            return;
        }
        thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

fn engine_with_table(config: DbConfig) -> Engine {
    let engine = Engine::new(config);
    let s = engine.session();
    s.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    s.execute("INSERT INTO t VALUES (0, 0)").unwrap();
    engine
}

/// Eight writers contending on one pessimistic table are admitted in
/// arrival order: the wait-queue is FIFO, not a thundering herd.
#[test]
fn pessimistic_writers_commit_in_fifo_order() {
    let engine = engine_with_table(DbConfig {
        lock_wait_timeout: Duration::from_secs(30),
        ..DbConfig::default()
    });
    let s = engine.session();
    s.execute("ALTER TABLE t SET LOCKING PESSIMISTIC").unwrap();

    // A staged committer holds t's admission lock while the writers line
    // up behind it.
    let mut holder = s.begin();
    holder.execute("INSERT INTO t VALUES (100, 0)").unwrap();
    let staged = holder.prepare_commit().unwrap();

    let order: Arc<Mutex<Vec<(i64, i64)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut handles = Vec::new();
    for i in 1..=8i64 {
        // Serialize enqueue order: each writer spawns only after the
        // previous one is parked (one wait episode per queued writer).
        wait_until(
            || engine.lock_stats().waits >= (i - 1) as u64,
            "previous writer to park",
        );
        let engine2 = engine.clone();
        let order2 = Arc::clone(&order);
        handles.push(thread::spawn(move || {
            let s = engine2.session();
            let mut txn = s.begin();
            txn.execute(&format!("INSERT INTO t VALUES ({i}, 0)")).unwrap();
            let ts = txn.commit().unwrap();
            order2.lock().unwrap().push((i, ts.as_micros()));
        }));
    }
    wait_until(|| engine.lock_stats().waits >= 8, "all writers to park");
    staged.commit().unwrap();
    for h in handles {
        h.join().unwrap();
    }

    let mut by_commit_ts = order.lock().unwrap().clone();
    by_commit_ts.sort_by_key(|&(_, ts)| ts);
    let admitted: Vec<i64> = by_commit_ts.iter().map(|&(i, _)| i).collect();
    assert_eq!(admitted, vec![1, 2, 3, 4, 5, 6, 7, 8], "FIFO admission");
    // Every writer actually landed (the pessimistic rebase admits pure
    // inserts after a wait instead of aborting them).
    assert_eq!(s.query("SELECT * FROM t").unwrap().len(), 10);
    let stats = engine.lock_stats();
    assert_eq!(stats.timeouts, 0);
    assert_eq!(stats.deadlocks, 0);
    assert!(stats.wait_time_us > 0, "parked time is accounted");
}

/// A lock timeout surfaces as a typed serialization conflict and leaves
/// no admission state behind: the table is immediately writable once the
/// holder retires.
#[test]
fn lock_timeout_is_a_conflict_and_leaks_nothing() {
    let engine = engine_with_table(DbConfig {
        lock_wait_timeout: Duration::from_millis(30),
        ..DbConfig::default()
    });
    let s = engine.session();
    s.execute("ALTER TABLE t SET LOCKING PESSIMISTIC").unwrap();

    let mut holder = s.begin();
    holder.execute("INSERT INTO t VALUES (1, 1)").unwrap();
    let staged = holder.prepare_commit().unwrap();

    let mut waiter = s.begin();
    waiter.execute("INSERT INTO t VALUES (2, 2)").unwrap();
    let err = waiter.commit().unwrap_err();
    assert!(is_serialization_conflict(&err), "{err:?}");
    assert!(err.to_string().contains("lock timeout"), "{err}");
    assert_eq!(engine.lock_stats().timeouts, 1);

    staged.commit().unwrap();
    // No leaked queue entry or lock: a fresh autocommit write sails
    // through without waiting again.
    let waits_before = engine.lock_stats().waits;
    s.execute("INSERT INTO t VALUES (3, 3)").unwrap();
    assert_eq!(engine.lock_stats().waits, waits_before);
    assert_eq!(s.query("SELECT * FROM t").unwrap().len(), 3);
}

/// Two transactions that take `FOR UPDATE` locks in opposite orders close
/// a wait-for cycle; the backstop aborts the one whose wait would
/// complete it with a typed `Deadlock`, and the survivor proceeds.
#[test]
fn mixed_mode_cycle_aborts_one_victim_as_deadlock() {
    let engine = Engine::new(DbConfig {
        lock_wait_timeout: Duration::from_secs(30),
        ..DbConfig::default()
    });
    let s = engine.session();
    s.execute("CREATE TABLE a (k INT)").unwrap();
    s.execute("CREATE TABLE b (k INT)").unwrap();
    s.execute("INSERT INTO a VALUES (1)").unwrap();
    s.execute("INSERT INTO b VALUES (1)").unwrap();

    let t1 = s.begin();
    t1.query("SELECT * FROM a FOR UPDATE").unwrap();
    let s2 = engine.session();
    let t2 = s2.begin();
    t2.query("SELECT * FROM b FOR UPDATE").unwrap();

    // t1 parks waiting for b (held by t2)...
    let waits_before = engine.lock_stats().waits;
    let first = thread::spawn(move || {
        t1.query("SELECT * FROM b FOR UPDATE").map(|_| ()).map(|_| t1)
    });
    wait_until(
        || engine.lock_stats().waits > waits_before,
        "t1 to park on b",
    );
    // ...so t2's wait for a would close the cycle: t2 is the victim.
    let err = t2.query("SELECT * FROM a FOR UPDATE").unwrap_err();
    assert!(err.is_deadlock(), "typed deadlock, got {err:?}");
    assert!(is_serialization_conflict(&err), "retry loops classify it");
    assert_eq!(engine.lock_stats().deadlocks, 1);

    // The victim aborts; the survivor's wait completes.
    t2.rollback().unwrap();
    let t1 = first.join().unwrap().unwrap();
    t1.commit().unwrap();
}

/// The adaptive policy flips a hot table to pessimistic exactly once
/// (hysteresis: no flapping while the mode already matches), and the flip
/// actually stops the abort churn — waiting writers rebase and commit.
#[test]
fn adaptive_policy_flips_hot_table_once_and_stops_churn() {
    let engine = engine_with_table(DbConfig {
        adaptive_lock_window: 4,
        adaptive_abort_threshold: 0.5,
        adaptive_lock_cooldown: Duration::from_secs(3600),
        lock_wait_timeout: Duration::from_secs(30),
        ..DbConfig::default()
    });
    let s = engine.session();

    // Each round stages two overlapping committers: while the table is
    // optimistic the second loses first-committer-wins validation — a
    // 50% abort rate that must cross the threshold within a few windows.
    let mut aborts = 0;
    for round in 0..8 {
        let mut t1 = s.begin();
        t1.execute(&format!("INSERT INTO t VALUES ({round}, 1)")).unwrap();
        let mut t2 = s.begin();
        t2.execute(&format!("INSERT INTO t VALUES ({round}, 2)")).unwrap();
        t1.commit().unwrap();
        if let Err(e) = t2.commit() {
            assert!(is_serialization_conflict(&e), "{e:?}");
            aborts += 1;
        }
        if engine.lock_stats().adaptive_flips > 0 {
            break;
        }
    }
    assert!(aborts >= 1, "optimistic losers abort before the flip");
    let stats = engine.lock_stats();
    assert_eq!(stats.adaptive_flips, 1, "one flip to pessimistic");
    assert_eq!(stats.tables_pessimistic, 1);

    // Under the flipped mode the same overlap succeeds: the loser waits
    // (or rebases) instead of aborting — and no second flip happens.
    for round in 0..4 {
        let mut t1 = s.begin();
        t1.execute(&format!("INSERT INTO t VALUES ({round}, 3)")).unwrap();
        let mut t2 = s.begin();
        t2.execute(&format!("INSERT INTO t VALUES ({round}, 4)")).unwrap();
        t1.commit().unwrap();
        t2.commit().expect("pessimistic rebase admits pure inserts");
    }
    assert_eq!(engine.lock_stats().adaptive_flips, 1, "no flapping");
}

/// `SELECT ... FOR UPDATE` semantics: rejected outside a transaction and
/// on dynamic tables; inside a transaction it pins the rows — a later
/// writer waits, and a FOR UPDATE over a snapshot the world has moved
/// past surfaces a conflict rather than locking stale rows.
#[test]
fn select_for_update_locks_rows_until_commit() {
    let engine = engine_with_table(DbConfig {
        lock_wait_timeout: Duration::from_millis(50),
        ..DbConfig::default()
    });
    let s = engine.session();

    // Outside a transaction: rejected (nothing would hold the lock).
    let err = s.execute("SELECT * FROM t FOR UPDATE").unwrap_err();
    assert!(err.to_string().contains("explicit transaction"), "{err}");

    // On a dynamic table: rejected.
    engine.create_warehouse("wh", 1).unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, sum(v) sv FROM t GROUP BY k",
    )
    .unwrap();
    let txn = s.begin();
    let err = txn.query("SELECT * FROM d FOR UPDATE").unwrap_err();
    assert!(err.to_string().contains("dynamic table"), "{err}");
    txn.rollback().unwrap();

    // The canonical read-modify-write: FOR UPDATE pins the read, the
    // UPDATE commits, and a rival transaction that began before the
    // commit cannot lock the now-stale rows.
    let mut t1 = s.begin();
    let rival = s.begin();
    t1.query("SELECT * FROM t FOR UPDATE").unwrap();
    t1.execute("UPDATE t SET v = v + 1 WHERE k = 0").unwrap();
    t1.commit().unwrap();
    let err = rival.query("SELECT * FROM t FOR UPDATE").unwrap_err();
    assert!(is_serialization_conflict(&err), "{err:?}");
    assert!(err.to_string().contains("snapshot"), "{err}");
    rival.rollback().unwrap();
}

/// `ALTER TABLE ... SET LOCKING` applies only to base tables, and `SHOW
/// STATS` surfaces the six lock counters.
#[test]
fn alter_locking_validates_targets_and_stats_surface() {
    let engine = engine_with_table(DbConfig::default());
    let s = engine.session();
    assert!(s.execute("ALTER TABLE nope SET LOCKING AUTO").is_err());
    engine.create_warehouse("wh", 1).unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, sum(v) sv FROM t GROUP BY k",
    )
    .unwrap();
    assert!(
        s.execute("ALTER TABLE d SET LOCKING PESSIMISTIC").is_err(),
        "DTs are refreshed, not user-locked"
    );
    s.execute("ALTER TABLE t SET LOCKING PESSIMISTIC").unwrap();
    assert_eq!(engine.lock_stats().tables_pessimistic, 1);
    s.execute("ALTER TABLE t SET LOCKING AUTO").unwrap();
    assert_eq!(engine.lock_stats().tables_pessimistic, 0);

    let rows = s.query("SHOW STATS").unwrap();
    let names: Vec<String> = rows
        .rows()
        .iter()
        .map(|r| format!("{:?}", r.get(0)))
        .collect();
    for counter in [
        "lock_waits",
        "lock_wait_time_us",
        "lock_timeouts",
        "deadlocks",
        "tables_pessimistic",
        "adaptive_flips",
    ] {
        assert!(
            names.iter().any(|n| n.contains(counter)),
            "SHOW STATS missing {counter}: {names:?}"
        );
    }
}

/// A mixed history — one table pessimistic, one optimistic, concurrent
/// writers on both — certifies free of the G0/G1 phenomena: the lock
/// manager changes *who waits*, never what becomes visible.
#[test]
fn dsg_certifies_mixed_mode_histories_free_of_g0_g1() {
    let engine = Engine::new(DbConfig {
        lock_wait_timeout: Duration::from_millis(50),
        ..DbConfig::default()
    });
    let s = engine.session();
    s.execute("CREATE TABLE checking (owner INT, balance INT)").unwrap();
    s.execute("CREATE TABLE savings (owner INT, balance INT)").unwrap();
    s.execute("INSERT INTO checking VALUES (1, 100), (2, 100)").unwrap();
    s.execute("INSERT INTO savings VALUES (1, 50), (2, 50)").unwrap();
    s.execute("ALTER TABLE checking SET LOCKING PESSIMISTIC").unwrap();
    let checking = engine.inspect(|st| st.catalog().resolve("checking").unwrap().id);
    let savings = engine.inspect(|st| st.catalog().resolve("savings").unwrap().id);
    let version_of = |e: EntityId| {
        engine.inspect(|st| st.table_store(e).unwrap().latest_version().raw() as u32)
    };

    let mut h = History::new();

    // T1 transfers across both tables (one pessimistic, one optimistic).
    let mut t1 = s.begin();
    let r1c = t1.snapshot().version_of(checking).unwrap().raw() as u32;
    let r1s = t1.snapshot().version_of(savings).unwrap().raw() as u32;
    t1.query("SELECT * FROM checking").unwrap();
    t1.query("SELECT * FROM savings").unwrap();
    h.read(1, "checking", r1c).read(1, "savings", r1s);
    t1.execute("UPDATE checking SET balance = balance - 10 WHERE owner = 1").unwrap();
    t1.execute("UPDATE savings SET balance = balance + 10 WHERE owner = 1").unwrap();

    // T2 concurrently updates the pessimistic table from the same
    // frontier. T1 commits first; T2's rewrite of stale rows must abort
    // (the rebase rule refuses deletes), not silently install.
    let mut t2 = s.begin();
    let r2c = t2.snapshot().version_of(checking).unwrap().raw() as u32;
    t2.query("SELECT * FROM checking").unwrap();
    h.read(2, "checking", r2c);
    t2.execute("UPDATE checking SET balance = 0 WHERE owner = 2").unwrap();

    t1.commit().unwrap();
    h.write(1, "checking", version_of(checking))
        .write(1, "savings", version_of(savings))
        .commit(1);
    let err = t2.commit().unwrap_err();
    assert!(is_serialization_conflict(&err), "{err:?}");
    h.abort(2);

    // T3: a pure-insert writer on the pessimistic table commits by
    // rebasing; its install is a real write the history must order.
    let mut t3 = s.begin();
    let r3c = t3.snapshot().version_of(checking).unwrap().raw() as u32;
    t3.query("SELECT * FROM checking").unwrap();
    h.read(3, "checking", r3c);
    t3.execute("INSERT INTO checking VALUES (3, 1)").unwrap();
    t3.commit().unwrap();
    h.write(3, "checking", version_of(checking)).commit(3);

    // T4: reader after the dust settles.
    let t4 = s.begin();
    let r4c = t4.snapshot().version_of(checking).unwrap().raw() as u32;
    t4.query("SELECT * FROM checking").unwrap();
    h.read(4, "checking", r4c).commit(4);
    t4.commit().unwrap();

    let report = analyze(&h);
    for phenomenon in ["G0", "G1a", "G1b", "G1c"] {
        assert!(
            report.free_of(phenomenon),
            "{phenomenon}: {:?}",
            report.phenomena
        );
    }
}
