//! Parallel DAG refresh (PR 8): whole-DAG rounds to one shared data
//! timestamp, group-installed levels landing in O(1) engine-lock
//! acquisitions, typed-conflict cone pruning when a base table vanishes
//! mid-round, snapshot consistency for concurrent readers, and DSG
//! certification of refresh + writer histories.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use dynamic_tables::core::{DbConfig, Engine, RoundStatus};
use dynamic_tables::isolation::{analyze, History};
use dt_common::EntityId;
use dt_storage::TableStore;

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..5000 {
        if cond() {
            return;
        }
        thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

fn store_of(engine: &Engine, table: &str) -> (EntityId, Arc<TableStore>) {
    engine.inspect(|st| {
        let id = st.catalog().resolve(table).unwrap().id;
        (id, Arc::clone(st.table_store(id).unwrap()))
    })
}

fn id_of(engine: &Engine, name: &str) -> EntityId {
    engine.inspect(|st| st.catalog().resolve(name).unwrap().id)
}

fn status_of(report: &dynamic_tables::core::RefreshRoundReport, dt: EntityId) -> &RoundStatus {
    &report
        .outcomes
        .iter()
        .find(|(id, _)| *id == dt)
        .unwrap_or_else(|| panic!("no outcome for {dt} in {report:?}"))
        .1
}

/// A three-DT DAG refreshes as one round: every DT advances to the same
/// shared data timestamp, levels respect dependencies, and a quiet second
/// round is all NO_DATA.
#[test]
fn parallel_round_refreshes_whole_dag_to_one_timestamp() {
    let engine = Engine::new(DbConfig { validate_dvs: true, ..DbConfig::default() });
    engine.create_warehouse("wh", 4).unwrap();
    let s = engine.session();
    s.execute("CREATE TABLE t1 (k INT, v INT)").unwrap();
    s.execute("INSERT INTO t1 VALUES (1, 10), (2, 20)").unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE a TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, sum(v) s FROM t1 GROUP BY k",
    )
    .unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE b TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, v FROM t1",
    )
    .unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE c TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, s FROM a",
    )
    .unwrap();

    s.execute("INSERT INTO t1 VALUES (1, 5), (3, 30)").unwrap();
    let report = engine.refresh_all_parallel().unwrap();
    assert_eq!(report.refreshed, 3, "all three DTs land: {report:?}");
    assert_eq!(report.failed, 0, "{report:?}");
    assert_eq!(report.conflicts, 0, "{report:?}");
    assert_eq!(report.pruned, 0, "{report:?}");
    assert_eq!(report.levels, 2, "a,b then c");

    // Every refresh in the round carries the round's shared timestamp.
    let log = engine.refresh_log();
    let round: Vec<_> = log
        .entries()
        .into_iter()
        .filter(|e| e.refresh_ts == report.refresh_ts)
        .collect();
    assert_eq!(round.len(), 3, "{round:?}");
    assert!(round.iter().all(|e| e.action == "incremental"), "{round:?}");
    // Telemetry satellites: durations and source-row counts are recorded.
    assert!(round.iter().all(|e| e.source_rows > 0), "{round:?}");

    // The downstream DT sees the refreshed upstream, not stale state.
    assert_eq!(
        s.query_sorted("SELECT * FROM c").unwrap(),
        s.query_sorted("SELECT k, sum(v) s FROM t1 GROUP BY k").unwrap(),
    );

    // Nothing changed since: the whole DAG lands as free NO_DATA.
    let quiet = engine.refresh_all_parallel().unwrap();
    assert_eq!(quiet.refreshed, 3, "{quiet:?}");
    assert_eq!(quiet.no_data, 3, "{quiet:?}");

    let stats = engine.refresh_stats();
    assert_eq!(stats.parallel_rounds, 2);
    assert_eq!(stats.group_submitted, 6, "all six installs rode the queue");
    assert!(stats.refreshes >= 6, "{stats:?}");
}

/// The acceptance scenario for group install: a level of N disjoint
/// refreshes lands in at most TWO engine-write-lock acquisitions.
/// Deterministic staging mirrors the writer group-commit test: all N
/// prepares finish first, the first installer leads a one-entry batch and
/// stalls on its table's storage commit guard (held by the test), the
/// other N-1 pile up behind it and drain as one batch.
#[test]
fn level_of_disjoint_refreshes_installs_in_at_most_two_lock_acquisitions() {
    const N: usize = 4;
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let s = engine.session();
    for i in 0..N {
        s.execute(&format!("CREATE TABLE g{i} (k INT)")).unwrap();
        s.execute(&format!(
            "CREATE DYNAMIC TABLE d{i} TARGET_LAG = '1 minute' WAREHOUSE = wh \
             AS SELECT k FROM g{i}"
        ))
        .unwrap();
        s.execute(&format!("INSERT INTO g{i} VALUES ({i})")).unwrap();
    }

    let refresh_ts = engine.inspect(|st| st.txn_manager().hlc().tick());
    let mut prepared = Vec::new();
    for i in 0..N {
        let dt = id_of(&engine, &format!("d{i}"));
        prepared.push(engine.prepare_refresh(dt, refresh_ts).unwrap());
    }
    let before = engine.refresh_stats();

    // Stall the leader inside its install: hold d0's storage commit
    // guard, which the install phase must acquire.
    let (_, d0_store) = store_of(&engine, "d0");
    let gate = d0_store.commit_guard();

    let mut prepared = prepared.into_iter();
    let leader = {
        let first = prepared.next().unwrap();
        thread::spawn(move || first.install().unwrap())
    };
    wait_until(
        || {
            engine.refresh_stats().install_lock_acquisitions
                == before.install_lock_acquisitions + 1
        },
        "the first installer to lead its batch",
    );

    let followers: Vec<_> = prepared
        .map(|p| thread::spawn(move || p.install().unwrap()))
        .collect();
    wait_until(
        || engine.pending_refresh_installs() == N - 1,
        "all remaining installers to enqueue",
    );
    drop(gate);

    let first = leader.join().unwrap();
    assert_eq!(first.action, "incremental");
    for f in followers {
        let installed = f.join().unwrap();
        assert_eq!(installed.action, "incremental");
        assert_eq!(installed.refresh_ts, refresh_ts);
    }

    let after = engine.refresh_stats();
    let acquisitions = after.install_lock_acquisitions - before.install_lock_acquisitions;
    assert_eq!(
        acquisitions, 2,
        "one stalled leader round + one batch for the other {} installs",
        N - 1
    );
    assert!(after.max_batch >= (N - 1) as u64, "stats: {after:?}");
    assert_eq!(after.group_submitted - before.group_submitted, N as u64);

    // And the refreshed contents all landed.
    for i in 0..N {
        assert_eq!(
            s.query_sorted(&format!("SELECT * FROM d{i}")).unwrap(),
            s.query_sorted(&format!("SELECT k FROM g{i}")).unwrap(),
        );
    }
}

/// Satellite 2: a base table dropped between a refresh's prepare and its
/// install aborts that refresh with a typed conflict — the same liveness
/// guard as the transactional commit path — and a subsequent whole-DAG
/// round records the orphaned DT as failed, prunes its downstream cone,
/// and still refreshes the rest. The round itself never poisons.
#[test]
fn base_dropped_mid_round_aborts_cone_with_typed_conflict() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let s = engine.session();
    s.execute("CREATE TABLE t (k INT)").unwrap();
    s.execute("CREATE TABLE u (k INT)").unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE d1 TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE d3 TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM d1",
    )
    .unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE d2 TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM u",
    )
    .unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    s.execute("INSERT INTO u VALUES (2)").unwrap();

    let d1 = id_of(&engine, "d1");
    let d2 = id_of(&engine, "d2");
    let d3 = id_of(&engine, "d3");

    // Prepare d1's refresh while t is live, then drop t before install.
    let refresh_ts = engine.inspect(|st| st.txn_manager().hlc().tick());
    let prep = engine.prepare_refresh(d1, refresh_ts).unwrap();
    assert!(!prep.is_failed(), "t was live at prepare");
    s.execute("DROP TABLE t").unwrap();
    let err = prep.install().unwrap_err();
    assert!(err.is_conflict(), "typed conflict, got: {err}");
    assert!(err.to_string().contains("dropped"), "{err}");

    // d1's refresh lock was released by the abort; a whole-DAG round now
    // records d1 as failed (its base no longer binds), prunes d3, and
    // still refreshes d2 — Ok, not Err.
    let report = engine.refresh_all_parallel().unwrap();
    assert!(
        matches!(status_of(&report, d1), RoundStatus::Failed(e) if e.contains("t")),
        "{report:?}"
    );
    assert_eq!(*status_of(&report, d3), RoundStatus::Pruned, "{report:?}");
    assert!(
        matches!(
            status_of(&report, d2),
            RoundStatus::Installed { action: "incremental", .. }
        ),
        "{report:?}"
    );
    assert_eq!(report.failed, 1, "{report:?}");
    assert_eq!(report.pruned, 1, "{report:?}");
    assert_eq!(report.refreshed, 1, "{report:?}");

    // Restore the base: the next round resumes the whole cone.
    s.execute("UNDROP TABLE t").unwrap();
    s.execute("INSERT INTO t VALUES (3)").unwrap();
    let healed = engine.refresh_all_parallel().unwrap();
    assert_eq!(healed.failed, 0, "{healed:?}");
    assert_eq!(healed.refreshed, 3, "{healed:?}");
    assert_eq!(
        s.query_sorted("SELECT * FROM d3").unwrap(),
        s.query_sorted("SELECT k FROM t").unwrap(),
    );
}

/// Satellite 3a: a reader pinned mid-round never observes a
/// half-refreshed level out of dependency order. For the chain
/// t → a → b, any snapshot must satisfy |b| ≤ |a| ≤ |t|: a child version
/// derives from an already-installed parent version at the same round
/// timestamp, and installs happen child-after-parent.
#[test]
fn readers_never_observe_half_refreshed_level() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let s = engine.session();
    s.execute("CREATE TABLE t (m INT)").unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE a TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT m FROM t",
    )
    .unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE b TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT m FROM a",
    )
    .unwrap();

    thread::scope(|scope| {
        let refresher = {
            let engine = engine.clone();
            scope.spawn(move || {
                let s = engine.session();
                for i in 0..20 {
                    s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
                    engine.refresh_all_parallel().unwrap();
                }
            })
        };
        // The reader races the rounds: every snapshot must be internally
        // consistent (monotone row counts down the chain) and stable on
        // re-read.
        let engine = engine.clone();
        let reader = scope.spawn(move || {
            while !refresher.is_finished() {
                let snap = engine.snapshot();
                let nt = snap.query_sorted("SELECT * FROM t").unwrap().len();
                let na = snap.query_sorted("SELECT * FROM a").unwrap().len();
                let nb = snap.query_sorted("SELECT * FROM b").unwrap().len();
                assert!(
                    nb <= na && na <= nt,
                    "half-refreshed level visible: |t|={nt} |a|={na} |b|={nb}"
                );
                assert_eq!(
                    snap.query_sorted("SELECT * FROM b").unwrap().len(),
                    nb,
                    "pinned snapshot re-read must be stable"
                );
            }
            refresher.join().unwrap();
        });
        reader.join().unwrap();
    });

    // Once quiescent, the whole chain converges.
    assert_eq!(s.query_sorted("SELECT * FROM a").unwrap().len(), 20);
    assert_eq!(s.query_sorted("SELECT * FROM b").unwrap().len(), 20);
}

/// Satellite 3b: two overlapping rounds serialize per DT via the refresh
/// lock — a DT is refreshed at most once per round timestamp (no
/// double-apply), losers classify as conflicts, and with DVS validation
/// on, every installed result equals the defining query at its data
/// timestamp.
#[test]
fn overlapping_rounds_serialize_per_dt_without_double_apply() {
    let engine = Engine::new(DbConfig { validate_dvs: true, ..DbConfig::default() });
    engine.create_warehouse("wh", 4).unwrap();
    let s = engine.session();
    s.execute("CREATE TABLE t (k INT)").unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE a TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE b TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM a",
    )
    .unwrap();

    thread::scope(|scope| {
        let writer = {
            let engine = engine.clone();
            scope.spawn(move || {
                let s = engine.session();
                for i in 0..10 {
                    s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
                }
            })
        };
        let rounds: Vec<_> = (0..2)
            .map(|_| {
                let engine = engine.clone();
                scope.spawn(move || {
                    for _ in 0..5 {
                        // Internal errors would be Err; per-DT losers of
                        // overlapping rounds must classify as conflicts.
                        engine.refresh_all_parallel().unwrap();
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in rounds {
            r.join().unwrap();
        }
    });

    // No double-apply: at most one non-failed refresh per (dt, refresh_ts).
    let mut seen = std::collections::BTreeSet::new();
    for e in engine.refresh_log().entries() {
        if e.initial || e.action == "failed" {
            continue;
        }
        assert!(
            seen.insert((e.dt, e.refresh_ts)),
            "duplicate refresh of {:?} at {}",
            e.dt,
            e.refresh_ts
        );
    }

    // Quiesce and converge (DVS validation ran on every install above).
    let final_round = engine.refresh_all_parallel().unwrap();
    assert_eq!(final_round.failed, 0, "{final_round:?}");
    assert_eq!(
        s.query_sorted("SELECT * FROM b").unwrap(),
        s.query_sorted("SELECT * FROM t").unwrap(),
    );
}

/// Satellite 3c: a history of one writer transaction, one parallel
/// refresh round, and one trailing reader is free of the G0/G1 phenomena
/// — refreshes behave like well-formed transactions in the DSG.
#[test]
fn dsg_certifies_refresh_and_writer_history_free_of_g0_g1() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let s = engine.session();
    s.execute("CREATE TABLE t (k INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE a TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    let (t_id, t_store) = store_of(&engine, "t");
    let (a_id, a_store) = store_of(&engine, "a");

    let mut h = History::new();

    // T1: a writer on the base table.
    let mut t1 = s.begin();
    let r1 = t1.snapshot().version_of(t_id).unwrap().raw() as u32;
    t1.query("SELECT * FROM t").unwrap();
    h.read(1, "t", r1);
    t1.execute("INSERT INTO t VALUES (2)").unwrap();
    t1.commit().unwrap();
    let t_after = t_store.latest_version().raw() as u32;
    h.write(1, "t", t_after).commit(1);

    // T2: the parallel refresh round — reads the base at its resolved
    // version (the committed frontier) and installs a's new version.
    let a_before = a_store.latest_version().raw() as u32;
    let report = engine.refresh_all_parallel().unwrap();
    assert_eq!(report.refreshed, 1, "{report:?}");
    let a_after = a_store.latest_version().raw() as u32;
    assert!(a_after > a_before, "the refresh installed a new version");
    h.read(2, "t", t_after).write(2, "a", a_after).commit(2);

    // T3: a trailing reader sees both committed versions.
    let t3 = s.begin();
    let r3t = t3.snapshot().version_of(t_id).unwrap().raw() as u32;
    let r3a = t3.snapshot().version_of(a_id).unwrap().raw() as u32;
    assert_eq!((r3t, r3a), (t_after, a_after));
    t3.query("SELECT * FROM t").unwrap();
    t3.query("SELECT * FROM a").unwrap();
    h.read(3, "t", r3t).read(3, "a", r3a).commit(3);
    t3.commit().unwrap();

    let report = analyze(&h);
    assert!(report.free_of("G0"), "no write cycle: {:?}", report.phenomena);
    assert!(report.free_of("G1a"), "no aborted reads: {:?}", report.phenomena);
    assert!(report.free_of("G1b"), "no intermediate reads: {:?}", report.phenomena);
    assert!(report.free_of("G1c"), "no dependency cycle: {:?}", report.phenomena);
}

/// Satellite 1: `SHOW STATS` surfaces the refresh-pipeline counters
/// locally — refreshes, group-install batches, parallel rounds, and the
/// worker-pool size — alongside the commit-pipeline counters.
#[test]
fn show_stats_reports_refresh_counters_locally() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let s = engine.session();
    s.execute("CREATE TABLE t (k INT)").unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE a TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    engine.refresh_all_parallel().unwrap();

    let dynamic_tables::core::ExecResult::Rows(rows) = s.execute("SHOW STATS").unwrap() else {
        panic!("SHOW STATS must return rows");
    };
    let mut saw = std::collections::HashMap::new();
    for row in rows.rows() {
        let (dt_common::Value::Str(name), dt_common::Value::Int(v)) =
            (&row.values()[0], &row.values()[1])
        else {
            panic!("expected (Str, Int) rows, got {row:?}");
        };
        saw.insert(name.clone(), *v);
    }
    assert!(saw["refreshes"] >= 2, "initialization + round: {saw:?}");
    assert!(saw["refresh_batches"] >= 1, "{saw:?}");
    assert!(saw["refresh_group_submitted"] >= 1, "{saw:?}");
    assert_eq!(saw["parallel_refresh_rounds"], 1, "{saw:?}");
    assert!(saw["refresh_workers"] >= 1, "{saw:?}");
    assert!(saw.contains_key("commits"), "{saw:?}");

    // And it answers inside an open transaction (engine-global counters,
    // not snapshot state).
    s.execute("BEGIN").unwrap();
    assert!(matches!(
        s.execute("SHOW STATS"),
        Ok(dynamic_tables::core::ExecResult::Rows(_))
    ));
    s.execute("ROLLBACK").unwrap();
}

/// Suspended DTs sit a round out, and their downstream cones prune with
/// them rather than reading a stale parent at the round timestamp.
#[test]
fn suspended_subtree_is_pruned_from_parallel_rounds() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let s = engine.session();
    s.execute("CREATE TABLE t (k INT)").unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE a TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE child TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k FROM a",
    )
    .unwrap();
    s.execute("ALTER DYNAMIC TABLE a SUSPEND").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();

    let a = id_of(&engine, "a");
    let child = id_of(&engine, "child");
    let report = engine.refresh_all_parallel().unwrap();
    assert!(
        !report.outcomes.iter().any(|(id, _)| *id == a),
        "suspended DTs are not part of the round: {report:?}"
    );
    assert_eq!(*status_of(&report, child), RoundStatus::Pruned, "{report:?}");
    assert_eq!(report.refreshed, 0, "{report:?}");

    s.execute("ALTER DYNAMIC TABLE a RESUME").unwrap();
    let resumed = engine.refresh_all_parallel().unwrap();
    assert_eq!(resumed.refreshed, 2, "{resumed:?}");
    assert_eq!(s.query_sorted("SELECT * FROM child").unwrap().len(), 1);
}
