//! Prepared statements: positional `?` parameters bound at execute time,
//! one bound plan reused across executions, and per-session statement
//! caching.

use dt_common::{row, Value};
use dt_core::{DbConfig, Engine, ExecResult, Session};

fn setup() -> (Engine, Session) {
    let eng = Engine::new(DbConfig::default());
    eng.create_warehouse("wh", 2).unwrap();
    let db = eng.session();
    db.execute("CREATE TABLE m (i INT, f FLOAT, s STRING)").unwrap();
    (eng, db)
}

#[test]
fn parameter_round_trip_across_types() {
    let (_eng, db) = setup();
    // INSERT with parameters: INT, FLOAT, STRING round-trip.
    let ins = db.prepare("INSERT INTO m VALUES (?, ?, ?)").unwrap();
    assert_eq!(ins.param_count(), 3);
    let rows = [
        (1i64, 1.5f64, "alpha"),
        (2, -0.25, "beta"),
        (3, 1e6, "it's"),
    ];
    for (i, f, s) in rows {
        let res = ins
            .execute(&[Value::Int(i), Value::Float(f), Value::Str(s.into())])
            .unwrap();
        assert!(matches!(res, ExecResult::Count(1)));
    }
    // SELECT with a parameter reads them back, per type.
    let by_i = db.prepare("SELECT f, s FROM m WHERE i = ?").unwrap();
    let got = by_i.query(&[Value::Int(2)]).unwrap();
    assert_eq!(got.rows(), &[row!(-0.25f64, "beta")]);
    let by_f = db.prepare("SELECT i FROM m WHERE f = ?").unwrap();
    let got = by_f.query(&[Value::Float(1.5)]).unwrap();
    assert_eq!(got.rows(), &[row!(1i64)]);
    let by_s = db.prepare("SELECT i FROM m WHERE s = ?").unwrap();
    let got = by_s.query(&[Value::Str("it's".into())]).unwrap();
    assert_eq!(got.rows(), &[row!(3i64)]);
    // NULL binds too: no row matches k = NULL under SQL semantics.
    assert!(by_i.query(&[Value::Null]).unwrap().is_empty());
}

#[test]
fn re_execution_reuses_one_bound_plan() {
    let (_eng, db) = setup();
    db.execute("INSERT INTO m VALUES (1, 1.0, 'a'), (2, 2.0, 'b'), (3, 3.0, 'c')")
        .unwrap();
    let stmt = db.prepare("SELECT s FROM m WHERE i >= ? ORDER BY s LIMIT 2").unwrap();
    // ≥ 2 distinct bindings against the same prepared statement.
    let first = stmt.query(&[Value::Int(1)]).unwrap();
    assert_eq!(first.rows(), &[row!("a"), row!("b")]);
    let second = stmt.query(&[Value::Int(3)]).unwrap();
    assert_eq!(second.rows(), &[row!("c")]);
    // The SQL was lexed/parsed/bound exactly once.
    assert_eq!(stmt.times_bound(), 1);
    // Preparing the same text again hits the session's statement cache.
    let again = db.prepare("SELECT s FROM m WHERE i >= ? ORDER BY s LIMIT 2").unwrap();
    assert_eq!(again.times_bound(), 1);
    assert_eq!(db.cached_statements(), 1);
}

#[test]
fn ddl_invalidates_cached_plans() {
    let (_eng, db) = setup();
    db.execute("INSERT INTO m VALUES (1, 1.0, 'a')").unwrap();
    let stmt = db.prepare("SELECT i FROM m WHERE i = ?").unwrap();
    assert_eq!(stmt.query(&[Value::Int(1)]).unwrap().len(), 1);
    // Replace the table under the prepared statement: it rebinds instead
    // of reading through a stale plan.
    db.execute("CREATE OR REPLACE TABLE m (i INT, f FLOAT, s STRING)").unwrap();
    db.execute("INSERT INTO m VALUES (7, 0.0, 'z')").unwrap();
    let got = stmt.query(&[Value::Int(7)]).unwrap();
    assert_eq!(got.rows(), &[row!(7i64)]);
    assert!(stmt.times_bound() >= 2, "plan must rebind after DDL");
}

#[test]
fn parameters_in_dml_predicates_and_assignments() {
    let (_eng, db) = setup();
    db.execute("INSERT INTO m VALUES (1, 1.0, 'a'), (2, 2.0, 'b')").unwrap();
    let upd = db.prepare("UPDATE m SET f = ? WHERE i = ?").unwrap();
    assert!(matches!(
        upd.execute(&[Value::Float(9.5), Value::Int(1)]).unwrap(),
        ExecResult::Count(1)
    ));
    assert_eq!(
        db.query_sorted("SELECT f FROM m").unwrap(),
        vec![row!(2.0f64), row!(9.5f64)]
    );
    let del = db.prepare("DELETE FROM m WHERE i = ?").unwrap();
    assert!(matches!(
        del.execute(&[Value::Int(2)]).unwrap(),
        ExecResult::Count(1)
    ));
    assert_eq!(db.query("SELECT * FROM m").unwrap().len(), 1);
}

#[test]
fn statements_fail_closed_when_their_session_is_dropped() {
    let eng = Engine::new(DbConfig::default());
    eng.create_warehouse("wh", 1).unwrap();
    let owner = eng.session_as("owner");
    owner.execute("CREATE TABLE t (k INT)").unwrap();
    owner
        .execute("CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t")
        .unwrap();
    let analyst = eng.session_as("analyst");
    let refresh = analyst.prepare("ALTER DYNAMIC TABLE d REFRESH").unwrap();
    drop(analyst);
    // The statement must not execute under some other role once its
    // session is gone — it errors instead of escalating.
    let err = refresh.execute(&[]).unwrap_err();
    assert!(matches!(err, dt_common::DtError::Unsupported(_)), "{err}");
}

#[test]
fn query_result_iterates_without_cloning() {
    let (_eng, db) = setup();
    db.execute("INSERT INTO m VALUES (1, 1.0, 'a'), (2, 2.0, 'b')").unwrap();
    let result = db.query("SELECT i FROM m").unwrap();
    assert_eq!(result.schema().names(), vec!["i"]);
    // Borrowing iteration.
    assert_eq!(result.iter().count(), 2);
    let by_ref: Vec<_> = (&result).into_iter().collect();
    assert_eq!(by_ref.len(), 2);
    // Consuming iteration takes ownership of the rows.
    let owned: Vec<_> = result.into_iter().collect();
    assert_eq!(owned.len(), 2);
}

#[test]
fn exec_result_distinguishes_non_query_outcomes() {
    let (_eng, db) = setup();
    // DDL produces Ok, not an empty row set.
    let res = db.execute("CREATE TABLE q (x INT)").unwrap();
    assert!(res.clone().try_rows().is_none());
    assert!(res.into_rows().is_err());
    // DML produces Count.
    let res = db.execute("INSERT INTO q VALUES (1)").unwrap();
    assert!(matches!(res, ExecResult::Count(1)));
    assert!(res.into_rows().is_err());
    // Queries produce rows.
    let res = db.execute("SELECT * FROM q").unwrap();
    assert_eq!(res.into_rows().unwrap(), vec![row!(1i64)]);
}
