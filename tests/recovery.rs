//! Crash recovery: every committed transaction, refresh round, and DDL
//! operation must survive a kill at any instant. The tests simulate
//! crashes by dropping the engine (no shutdown hook exists — the WAL is
//! fsynced per commit batch, so a drop IS a kill) and then damaging the
//! on-disk state: truncating the live segment at every byte offset,
//! flipping bits in record payloads, and interleaving checkpoints. After
//! each recovery the engine must answer queries byte-identically to the
//! committed pre-crash state, including `query_at` time travel and
//! `UNDROP`.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use dt_common::{row, Duration, Row, Value};
use dt_core::{DbConfig, DurabilityMode, Engine};

static NEXT: AtomicU64 = AtomicU64::new(0);

/// A unique per-test scratch directory, removed on drop.
struct TestDir {
    path: PathBuf,
}

impl TestDir {
    fn new(tag: &str) -> TestDir {
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("dt-recovery-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TestDir { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn durable(dir: &Path) -> Engine {
    Engine::open(dir).unwrap()
}

fn durable_with(dir: &Path, f: impl FnOnce(&mut DbConfig)) -> Engine {
    let mut cfg = DbConfig {
        durability: DurabilityMode::wal(dir),
        ..DbConfig::default()
    };
    f(&mut cfg);
    Engine::open_with_config(cfg).unwrap()
}

/// All WAL segment files in `dir`, sorted by name (= sequence order).
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .map(|n| n.starts_with("wal-") && n.ends_with(".seg"))
                .unwrap_or(false)
        })
        .collect();
    segs.sort();
    segs
}

/// Snapshot every file in the directory so a crash point can be replayed
/// repeatedly against pristine bytes.
fn snapshot_dir(dir: &Path) -> Vec<(PathBuf, Vec<u8>)> {
    let mut files: Vec<(PathBuf, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.is_file())
        .map(|p| {
            let bytes = std::fs::read(&p).unwrap();
            (p, bytes)
        })
        .collect();
    files.sort();
    files
}

fn restore_dir(dir: &Path, files: &[(PathBuf, Vec<u8>)]) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let p = entry.unwrap().path();
        if p.is_file() {
            std::fs::remove_file(&p).unwrap();
        }
    }
    for (p, bytes) in files {
        std::fs::write(p, bytes).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Plain durability: committed work survives a restart.
// ---------------------------------------------------------------------------

#[test]
fn committed_dml_and_ddl_survive_restart() {
    let dir = TestDir::new("basic");
    let before;
    {
        let eng = durable(dir.path());
        let s = eng.session();
        s.execute("CREATE TABLE t (k INT, v INT, name STRING)").unwrap();
        s.execute("INSERT INTO t VALUES (1, 10, 'a'), (2, 20, NULL)").unwrap();
        s.execute("INSERT INTO t VALUES (3, 30, 'c')").unwrap();
        s.execute("UPDATE t SET v = v + 1 WHERE k = 2").unwrap();
        s.execute("DELETE FROM t WHERE k = 1").unwrap();
        before = s.query_sorted("SELECT * FROM t").unwrap();
        // Engine dropped here without any shutdown hook: a simulated kill.
    }
    let eng = durable(dir.path());
    let s = eng.session();
    assert_eq!(s.query_sorted("SELECT * FROM t").unwrap(), before);
    assert_eq!(
        before,
        vec![Row::new(vec![Value::Int(2), Value::Int(21), Value::Null]), row!(3i64, 30i64, "c")]
    );
    // The recovered engine keeps working: more DML and another restart.
    s.execute("INSERT INTO t VALUES (4, 40, 'd')").unwrap();
    let again = s.query_sorted("SELECT * FROM t").unwrap();
    drop(s);
    drop(eng);
    let eng = durable(dir.path());
    assert_eq!(eng.session().query_sorted("SELECT * FROM t").unwrap(), again);
    assert!(eng.wal_stats().recovery_replayed > 0);
}

#[test]
fn multi_table_transaction_is_atomic_across_a_crash() {
    let dir = TestDir::new("txn");
    {
        let eng = durable(dir.path());
        let s = eng.session();
        s.execute("CREATE TABLE checking (owner INT, balance INT)").unwrap();
        s.execute("CREATE TABLE savings (owner INT, balance INT)").unwrap();
        s.execute("INSERT INTO checking VALUES (1, 100)").unwrap();
        s.execute("INSERT INTO savings VALUES (1, 50)").unwrap();
        // One transaction moves 30 across both tables: it must be durable
        // as a unit (single DmlCommit record spanning both stores).
        let mut txn = s.begin();
        txn.execute("UPDATE checking SET balance = balance - 30 WHERE owner = 1").unwrap();
        txn.execute("UPDATE savings SET balance = balance + 30 WHERE owner = 1").unwrap();
        txn.commit().unwrap();
    }
    let eng = durable(dir.path());
    let s = eng.session();
    assert_eq!(s.query_sorted("SELECT * FROM checking").unwrap(), vec![row!(1i64, 70i64)]);
    assert_eq!(s.query_sorted("SELECT * FROM savings").unwrap(), vec![row!(1i64, 80i64)]);
}

#[test]
fn refresh_rounds_time_travel_and_dag_survive_restart() {
    let dir = TestDir::new("refresh");
    let (after_init, after_second, final_now);
    let (rows_init, rows_second, rows_now);
    {
        let eng = durable(dir.path());
        eng.create_warehouse("wh", 2).unwrap();
        let s = eng.session();
        s.execute("CREATE TABLE t (k INT, v INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
        s.execute(
            "CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' WAREHOUSE = wh \
             AS SELECT k, sum(v) s FROM t GROUP BY k",
        )
        .unwrap();
        s.execute(
            "CREATE DYNAMIC TABLE top1 TARGET_LAG = DOWNSTREAM WAREHOUSE = wh \
             AS SELECT k, s FROM agg WHERE s >= 20",
        )
        .unwrap();
        eng.clock().advance(Duration::from_secs(60));
        after_init = eng.now();
        s.execute("INSERT INTO t VALUES (1, 5), (3, 30)").unwrap();
        s.execute("ALTER DYNAMIC TABLE agg REFRESH").unwrap();
        eng.clock().advance(Duration::from_secs(60));
        after_second = eng.now();
        s.execute("DELETE FROM t WHERE k = 2").unwrap();
        s.execute("ALTER DYNAMIC TABLE agg REFRESH").unwrap();
        final_now = eng.now();
        rows_init = s.query_at("SELECT * FROM agg", after_init).unwrap().into_sorted_rows();
        rows_second = s.query_at("SELECT * FROM agg", after_second).unwrap().into_sorted_rows();
        rows_now = s.query_sorted("SELECT * FROM agg").unwrap();
    }
    let eng = durable(dir.path());
    let s = eng.session();
    // Time-travel history is intact at every pre-crash timestamp.
    assert_eq!(s.query_at("SELECT * FROM agg", after_init).unwrap().into_sorted_rows(), rows_init);
    assert_eq!(
        s.query_at("SELECT * FROM agg", after_second).unwrap().into_sorted_rows(),
        rows_second
    );
    assert_eq!(s.query_at("SELECT * FROM agg", final_now).unwrap().into_sorted_rows(), rows_now);
    assert_eq!(s.query_sorted("SELECT * FROM agg").unwrap(), rows_now);
    // The DT DAG and scheduler were rebuilt: refreshes keep flowing, and
    // the DOWNSTREAM child refreshes through its parent.
    s.execute("INSERT INTO t VALUES (4, 400)").unwrap();
    s.execute("ALTER DYNAMIC TABLE top1 REFRESH").unwrap();
    let top = s.query_sorted("SELECT * FROM top1").unwrap();
    assert!(top.contains(&row!(4i64, 400i64)), "downstream refresh missed new data: {top:?}");
}

#[test]
fn suspension_clone_and_undrop_survive_restart() {
    let dir = TestDir::new("ddl");
    {
        let eng = durable(dir.path());
        eng.create_warehouse("wh", 2).unwrap();
        let s = eng.session();
        s.execute("CREATE TABLE t (k INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        s.execute(
            "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t",
        )
        .unwrap();
        s.execute("CREATE TABLE t2 CLONE t").unwrap();
        s.execute("CREATE DYNAMIC TABLE d2 CLONE d").unwrap();
        s.execute("ALTER DYNAMIC TABLE d SUSPEND").unwrap();
        s.execute("INSERT INTO t2 VALUES (3)").unwrap();
        s.execute("DROP TABLE t2").unwrap();
    }
    let eng = durable(dir.path());
    let s = eng.session();
    // The clone recovered with its carried-over refresh history.
    assert_eq!(s.query_sorted("SELECT k FROM d2").unwrap(), vec![row!(1i64), row!(2i64)]);
    // The drop recovered, and so did the dropped store: UNDROP restores it.
    assert!(s.query("SELECT k FROM t2").is_err());
    s.execute("UNDROP TABLE t2").unwrap();
    assert_eq!(
        s.query_sorted("SELECT k FROM t2").unwrap(),
        vec![row!(1i64), row!(2i64), row!(3i64)]
    );
    // The suspension recovered: d reports SUSPENDED and skips refreshes.
    let show = s.query("SHOW DYNAMIC TABLES").unwrap();
    let d_row = show.rows().iter().find(|r| r.get(0) == &Value::Str("d".into()));
    assert!(d_row.is_some(), "SHOW DYNAMIC TABLES lost d");
    s.execute("ALTER DYNAMIC TABLE d RESUME").unwrap();
    s.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
}

// ---------------------------------------------------------------------------
// Checkpoints: truncation, replay watermark, and equivalence.
// ---------------------------------------------------------------------------

#[test]
fn checkpoint_truncates_sealed_wal_and_replay_resumes_from_watermark() {
    let dir = TestDir::new("checkpoint");
    {
        let eng = durable(dir.path());
        let s = eng.session();
        s.execute("CREATE TABLE t (k INT)").unwrap();
        for i in 0..10 {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
        assert!(eng.checkpoint().unwrap());
        // The checkpoint rolled the WAL and removed sealed segments: one
        // (empty) active segment plus the checkpoint file remain.
        assert_eq!(segments(dir.path()).len(), 1);
        assert!(dir.path().join(dt_wal::CHECKPOINT_FILE).exists());
        assert_eq!(eng.wal_stats().checkpoints, 1);
        // Post-checkpoint commits land in the fresh segment.
        for i in 10..13 {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
    }
    let eng = durable(dir.path());
    let s = eng.session();
    let rows = s.query_sorted("SELECT k FROM t").unwrap();
    assert_eq!(rows, (0..13i64).map(|i| row!(i)).collect::<Vec<Row>>());
    // Only the 3 post-watermark commits were replayed, not the 11 records
    // the checkpoint already covers.
    assert_eq!(eng.wal_stats().recovery_replayed, 3);
    drop(s);
    drop(eng);
    // A reopen directly after a checkpoint replays nothing.
    let eng = durable(dir.path());
    assert!(eng.checkpoint().unwrap());
    drop(eng);
    let eng = durable(dir.path());
    assert_eq!(eng.wal_stats().recovery_replayed, 0);
    assert_eq!(
        eng.session().query_sorted("SELECT k FROM t").unwrap(),
        (0..13i64).map(|i| row!(i)).collect::<Vec<Row>>()
    );
}

#[test]
fn automatic_checkpoints_fire_on_wal_growth() {
    let dir = TestDir::new("auto-ckpt");
    let eng = durable_with(dir.path(), |cfg| cfg.wal_checkpoint_bytes = 4096);
    let s = eng.session();
    s.execute("CREATE TABLE t (k INT, pad STRING)").unwrap();
    let pad = "x".repeat(200);
    for i in 0..40 {
        s.execute(&format!("INSERT INTO t VALUES ({i}, '{pad}')")).unwrap();
    }
    assert!(eng.wal_stats().checkpoints >= 1, "no automatic checkpoint fired");
    drop(s);
    drop(eng);
    let eng = durable(dir.path());
    assert_eq!(eng.session().query("SELECT k FROM t").unwrap().len(), 40);
}

// ---------------------------------------------------------------------------
// Crash-point sweep: kill at every byte of the live segment.
// ---------------------------------------------------------------------------

#[test]
fn kill_at_every_wal_byte_recovers_a_committed_prefix() {
    let dir = TestDir::new("sweep");
    const N: i64 = 8;
    {
        let eng = durable(dir.path());
        let s = eng.session();
        s.execute("CREATE TABLE t (k INT)").unwrap();
        // One commit per value: the WAL holds one catalog record followed
        // by N single-row DmlCommit records, all in one segment.
        for i in 0..N {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
    }
    let pristine = snapshot_dir(dir.path());
    let segs = segments(dir.path());
    assert_eq!(segs.len(), 1, "sweep expects a single live segment");
    let seg = &segs[0];
    let seg_len = std::fs::metadata(seg).unwrap().len();

    // Truncate the segment at EVERY byte offset: recovery must always
    // succeed, and the surviving rows must be a contiguous committed
    // prefix 0..k. A cut inside frame j destroys frames j.. and nothing
    // before — so k can only grow as the cut point moves right.
    let mut last_recovered: i64 = 0;
    for cut in 0..=seg_len {
        restore_dir(dir.path(), &pristine);
        let f = std::fs::OpenOptions::new().write(true).open(seg).unwrap();
        f.set_len(cut).unwrap();
        drop(f);
        let eng = durable(dir.path());
        let s = eng.session();
        match s.query_sorted("SELECT k FROM t") {
            Err(_) => {
                // The CREATE TABLE record itself was cut: nothing exists yet.
                assert_eq!(last_recovered, 0, "table vanished after commits survived a longer prefix");
            }
            Ok(rows) => {
                let k = rows.len() as i64;
                assert!(k <= N);
                assert_eq!(rows, (0..k).map(|i| row!(i)).collect::<Vec<Row>>(), "non-prefix state at cut {cut}");
                assert!(k >= last_recovered, "longer WAL prefix recovered fewer commits at cut {cut}");
                last_recovered = k;
            }
        }
    }
    assert_eq!(last_recovered, N, "full-length segment must recover every commit");
}

#[test]
fn bit_flips_are_detected_and_the_corrupt_suffix_is_dropped() {
    let dir = TestDir::new("bitflip");
    const N: i64 = 6;
    {
        let eng = durable(dir.path());
        let s = eng.session();
        s.execute("CREATE TABLE t (k INT)").unwrap();
        for i in 0..N {
            s.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
        }
    }
    let pristine = snapshot_dir(dir.path());
    let segs = segments(dir.path());
    let seg = &segs[0];
    let seg_len = std::fs::metadata(seg).unwrap().len() as usize;

    // Flip one bit at a spread of positions across the segment. Flips in
    // the 14-byte segment header must be refused outright (the segment's
    // identity is untrustworthy); flips in the record region are caught by
    // the per-frame CRC — recovery keeps the frames before the damaged one
    // and truncates the rest. Never a crash, never garbage served.
    for pos in (0..seg_len).step_by(7) {
        restore_dir(dir.path(), &pristine);
        let mut bytes = std::fs::read(seg).unwrap();
        bytes[pos] ^= 0x40;
        std::fs::write(seg, &bytes).unwrap();
        if pos < 14 {
            assert!(
                Engine::open(dir.path()).is_err(),
                "damaged segment header accepted at byte {pos}"
            );
            continue;
        }
        let eng = durable(dir.path());
        let s = eng.session();
        if let Ok(rows) = s.query_sorted("SELECT k FROM t") {
            let k = rows.len() as i64;
            assert!(k <= N);
            assert_eq!(rows, (0..k).map(|i| row!(i)).collect::<Vec<Row>>(), "non-prefix state after flip at {pos}");
        }
        // After truncation the damaged bytes are gone: a second reopen of
        // the SAME directory must replay cleanly and identically.
        let replayed = eng.wal_stats().recovery_replayed;
        drop(s);
        drop(eng);
        let eng = durable(dir.path());
        assert_eq!(eng.wal_stats().recovery_replayed, replayed, "recovery not idempotent after flip at {pos}");
    }
}

#[test]
fn torn_tail_is_truncated_and_the_engine_keeps_accepting_writes() {
    let dir = TestDir::new("torn");
    {
        let eng = durable(dir.path());
        let s = eng.session();
        s.execute("CREATE TABLE t (k INT)").unwrap();
        s.execute("INSERT INTO t VALUES (1)").unwrap();
        s.execute("INSERT INTO t VALUES (2)").unwrap();
    }
    // Tear the last record in half.
    let segs = segments(dir.path());
    let seg = &segs[0];
    let len = std::fs::metadata(seg).unwrap().len();
    let f = std::fs::OpenOptions::new().write(true).open(seg).unwrap();
    f.set_len(len - 3).unwrap();
    drop(f);
    let eng = durable(dir.path());
    let s = eng.session();
    assert_eq!(s.query_sorted("SELECT k FROM t").unwrap(), vec![row!(1i64)]);
    // The truncated WAL accepts new appends at the repaired tail.
    s.execute("INSERT INTO t VALUES (9)").unwrap();
    drop(s);
    drop(eng);
    let eng = durable(dir.path());
    assert_eq!(
        eng.session().query_sorted("SELECT k FROM t").unwrap(),
        vec![row!(1i64), row!(9i64)]
    );
}

// ---------------------------------------------------------------------------
// Differential equivalence: the recovered engine answers the full fixture
// set byte-identically to the pre-crash engine.
// ---------------------------------------------------------------------------

const FIXTURES: &[&str] = &[
    "SELECT k, v FROM t1 WHERE k < 20",
    "SELECT k, v FROM t1 WHERE k IN (3, 7, 250, 299)",
    "SELECT k FROM t1 WHERE name NOT IN ('n1', 'n2') AND k < 40",
    "SELECT k FROM t1 WHERE k > 90 AND k <= 110",
    "SELECT k FROM t1 WHERE k + 1 > 100 AND k < 150",
    "SELECT k, v FROM t1 WHERE v = 3 OR k = 299",
    "SELECT k, name FROM t1 WHERE name IS NULL",
    "SELECT k FROM t1 WHERE name = 'n3'",
    "SELECT k * 2 d, v FROM t1 WHERE k BETWEEN 10 AND 25",
    "SELECT a.k, a.v, b.w FROM t1 a JOIN t2 b ON a.k = b.k WHERE a.k < 60",
    "SELECT a.k, b.w FROM t1 a LEFT JOIN t2 b ON a.k = b.k WHERE a.k < 120",
    "SELECT v, count(*) c, min(k) lo, max(k) hi FROM t1 GROUP BY v",
    "SELECT DISTINCT v FROM t1 WHERE k < 100",
    "SELECT k FROM t1 WHERE k < 5 UNION ALL SELECT k FROM t2 WHERE k < 5",
    "SELECT v, k, sum(k) OVER (PARTITION BY v ORDER BY k) run FROM t1 WHERE k < 50",
    "SELECT k, v FROM t1 WHERE v > 5 ORDER BY v, k DESC LIMIT 17",
    "SELECT count(*) n, sum(v) s FROM t1 WHERE k > 100000",
    "SELECT k, d FROM (SELECT k, v - 1 d FROM t1 WHERE k > 30) x WHERE d < 5",
    "SELECT * FROM dt_totals",
];

#[test]
fn recovered_engine_answers_the_differential_fixture_set_identically() {
    let dir = TestDir::new("differential");
    let mut expected: Vec<Vec<Row>> = Vec::new();
    let at;
    let expected_at;
    {
        let eng = durable(dir.path());
        eng.create_warehouse("wh", 2).unwrap();
        let s = eng.session();
        s.execute("CREATE TABLE t1 (k INT, v INT, name STRING)").unwrap();
        s.execute("CREATE TABLE t2 (k INT, w FLOAT)").unwrap();
        for chunk in 0..6i64 {
            let rows: Vec<String> = (0..50)
                .map(|i| {
                    let k = chunk * 50 + i;
                    let name = if k % 7 == 0 { "NULL".into() } else { format!("'n{}'", k % 10) };
                    format!("({k}, {}, {name})", k % 13)
                })
                .collect();
            s.execute(&format!("INSERT INTO t1 VALUES {}", rows.join(", "))).unwrap();
        }
        for chunk in 0..4i64 {
            let rows: Vec<String> =
                (0..25).map(|i| format!("({}, {}.5)", chunk * 25 + i, (chunk * 25 + i) * 2)).collect();
            s.execute(&format!("INSERT INTO t2 VALUES {}", rows.join(", "))).unwrap();
        }
        s.execute(
            "CREATE DYNAMIC TABLE dt_totals TARGET_LAG = '1 minute' WAREHOUSE = wh \
             AS SELECT v, sum(k) total FROM t1 GROUP BY v",
        )
        .unwrap();
        // Mid-history checkpoint: half the state comes back via snapshot,
        // half via replay — equivalence must hold across the seam.
        assert!(eng.checkpoint().unwrap());
        eng.clock().advance(Duration::from_secs(60));
        at = eng.now();
        s.execute("UPDATE t1 SET v = v + 1 WHERE k < 10").unwrap();
        s.execute("ALTER DYNAMIC TABLE dt_totals REFRESH").unwrap();
        for sql in FIXTURES {
            expected.push(s.query(sql).unwrap().into_rows());
        }
        expected_at = s.query_at("SELECT * FROM dt_totals", at).unwrap().into_sorted_rows();
    }
    let eng = durable(dir.path());
    let s = eng.session();
    for (sql, want) in FIXTURES.iter().zip(&expected) {
        let got = s.query(sql).unwrap().into_rows();
        assert_eq!(&got, want, "recovered answer diverged for: {sql}");
    }
    assert_eq!(
        s.query_at("SELECT * FROM dt_totals", at).unwrap().into_sorted_rows(),
        expected_at
    );
    assert!(eng.wal_stats().recovery_replayed > 0);
}

#[test]
fn in_memory_mode_is_preserved_and_writes_nothing() {
    let dir = TestDir::new("memory");
    let eng = Engine::new(DbConfig::default());
    let s = eng.session();
    s.execute("CREATE TABLE t (k INT)").unwrap();
    s.execute("INSERT INTO t VALUES (1)").unwrap();
    let stats = eng.wal_stats();
    assert_eq!(stats.appends, 0);
    assert_eq!(stats.fsyncs, 0);
    assert!(snapshot_dir(dir.path()).is_empty());
}
