//! End-to-end wire-protocol tests over real TCP sockets: the full
//! engine surface — DDL, DML, prepared statements with `?` parameters,
//! explicit transactions with conflict retry, time travel, telemetry —
//! exercised remotely, plus the service behaviors a network front end
//! must get right (admission control, disconnect rollback, graceful
//! shutdown).

use std::net::TcpStream;
use std::thread;
use std::time::Duration;

use dynamic_tables::client::{Client, ClientError};
use dynamic_tables::core::{DbConfig, Engine};
use dynamic_tables::server::{Server, ServerConfig};
use dt_common::Value;

fn serve(config: ServerConfig) -> (Engine, Server) {
    let engine = Engine::new(DbConfig::default());
    let server = Server::bind(engine.clone(), "127.0.0.1:0", config).unwrap();
    (engine, server)
}

fn serve_default() -> (Engine, Server) {
    serve(ServerConfig::default())
}

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..5000 {
        if cond() {
            return;
        }
        thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

fn int(rows: &dynamic_tables::wire::RemoteRows, row: usize, col: usize) -> i64 {
    match &rows.rows()[row].values()[col] {
        Value::Int(v) => *v,
        other => panic!("expected Int, got {other:?}"),
    }
}

#[test]
fn remote_session_full_surface() {
    let (engine, server) = serve_default();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // DDL + DML + query.
    client.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    client.execute("INSERT INTO t VALUES (1, 10), (2, 20)").unwrap();
    let rows = client.query("SELECT k, v FROM t ORDER BY k").unwrap();
    assert_eq!(rows.len(), 2);
    assert_eq!(rows.schema().columns().len(), 2);
    assert_eq!(int(&rows, 0, 1), 10);
    assert_eq!(int(&rows, 1, 1), 20);

    // Prepared statements with `?` parameters, reused with fresh binds.
    let ins = client.prepare("INSERT INTO t VALUES (?, ?)").unwrap();
    assert_eq!(ins.param_count(), 2);
    client
        .execute_prepared(ins, &[Value::Int(3), Value::Int(30)])
        .unwrap();
    client
        .execute_prepared(ins, &[Value::Int(4), Value::Int(40)])
        .unwrap();
    let sel = client.prepare("SELECT v FROM t WHERE k = ?").unwrap();
    let rows = client.query_prepared(sel, &[Value::Int(4)]).unwrap();
    assert_eq!(int(&rows, 0, 0), 40);

    // Time travel: advance the simulated clock past the folded HLC
    // ticks of the commits so far, capture "now", commit more, and read
    // back the old state through the wire.
    engine.clock().advance(dt_common::Duration::from_secs(100));
    let before = engine.now();
    client.execute("INSERT INTO t VALUES (5, 50)").unwrap();
    let old = client.query_at("SELECT k FROM t", before).unwrap();
    assert_eq!(old.len(), 4);
    let new = client.query("SELECT k FROM t").unwrap();
    assert_eq!(new.len(), 5);

    // Explicit transaction: commit publishes, rollback discards.
    client.begin().unwrap();
    client.execute("INSERT INTO t VALUES (6, 60)").unwrap();
    client.commit().unwrap();
    client.begin().unwrap();
    client.execute("INSERT INTO t VALUES (7, 70)").unwrap();
    client.rollback().unwrap();
    let rows = client.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(int(&rows, 0, 0), 6);

    // Engine errors arrive typed and leave the connection usable.
    let err = client.query("SELECT nope FROM t").unwrap_err();
    assert!(matches!(err, ClientError::Engine(_)), "got {err:?}");
    assert_eq!(client.query("SELECT k FROM t").unwrap().len(), 6);

    client.close().unwrap();
    server.shutdown();
}

#[test]
fn remote_conflict_is_typed_and_retryable() {
    let (_engine, server) = serve_default();
    let addr = server.local_addr();
    let mut setup = Client::connect(addr).unwrap();
    setup.execute("CREATE TABLE acct (id INT, bal INT)").unwrap();
    setup.execute("INSERT INTO acct VALUES (1, 100)").unwrap();

    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();

    // Classic first-committer-wins race: both transactions update the
    // same row; the second committer must get a typed Conflict.
    a.begin().unwrap();
    a.execute("UPDATE acct SET bal = bal - 10 WHERE id = 1").unwrap();
    b.begin().unwrap();
    b.execute("UPDATE acct SET bal = bal - 20 WHERE id = 1").unwrap();
    a.commit().unwrap();
    let err = b.commit().unwrap_err();
    assert!(err.is_conflict(), "expected conflict, got {err:?}");

    // The loser retries through the helper and lands its change.
    b.run_txn(8, |c| {
        c.execute("UPDATE acct SET bal = bal - 20 WHERE id = 1")?;
        Ok(())
    })
    .unwrap();
    let rows = setup.query("SELECT bal FROM acct WHERE id = 1").unwrap();
    assert_eq!(int(&rows, 0, 0), 70);
    server.shutdown();
}

#[test]
fn disconnect_mid_transaction_rolls_back_and_leaks_nothing() {
    let (engine, server) = serve_default();
    let addr = server.local_addr();
    let mut setup = Client::connect(addr).unwrap();
    setup.execute("CREATE TABLE t (x INT)").unwrap();
    setup.execute("INSERT INTO t VALUES (1)").unwrap();

    // Open a transaction remotely, buffer a write, then vanish without
    // COMMIT, ROLLBACK, or even Close.
    {
        let mut doomed = Client::connect(addr).unwrap();
        doomed.begin().unwrap();
        doomed.execute("INSERT INTO t VALUES (999)").unwrap();
        assert_eq!(
            engine.inspect(|s| s.txn_manager().active_txns()),
            1,
            "remote txn should be live"
        );
        // Drop the Client: the socket closes, no farewell frames.
    }

    // The server notices the disconnect, drops the session, and the
    // session drop aborts the orphaned transaction.
    wait_until(
        || engine.inspect(|s| s.txn_manager().active_txns()) == 0,
        "orphaned transaction to roll back",
    );
    wait_until(|| server.active_connections() == 1, "connection to be reaped");

    // Nothing leaked: the buffered insert is gone and a subsequent
    // writer commits cleanly (no admission lock held by the ghost).
    let rows = setup.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(int(&rows, 0, 0), 1);
    setup.begin().unwrap();
    setup.execute("INSERT INTO t VALUES (2)").unwrap();
    setup.commit().unwrap();
    let rows = setup.query("SELECT count(*) FROM t").unwrap();
    assert_eq!(int(&rows, 0, 0), 2);
    server.shutdown();
}

#[test]
fn connection_limit_rejects_with_server_busy() {
    let (_engine, server) = serve(ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    let mut a = Client::connect(addr).unwrap();
    let _b = Client::connect(addr).unwrap();
    wait_until(|| server.active_connections() == 2, "both admissions");

    // The N+1th connection is answered, not hung.
    let err = Client::connect(addr).unwrap_err();
    match err {
        ClientError::Busy { active, limit } => {
            assert_eq!(limit, 2);
            assert!(active >= 2, "active = {active}");
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    assert!(err.is_busy());

    // Rejections are counted, and a freed slot re-admits.
    assert!(server.stats().rejected_connections >= 1);
    a.execute("CREATE TABLE t (x INT)").unwrap();
    a.close().unwrap();
    wait_until(|| server.active_connections() == 1, "slot to free");
    let mut c = Client::connect(addr).unwrap();
    c.execute("INSERT INTO t VALUES (1)").unwrap();
    server.shutdown();
}

#[test]
fn concurrent_remote_transfers_conserve_balance() {
    const CLIENTS: usize = 4;
    const TRANSFERS_EACH: usize = 12;
    const TOTAL: i64 = 1_000;

    let (_engine, server) = serve_default();
    let addr = server.local_addr();
    let mut setup = Client::connect(addr).unwrap();
    setup
        .execute("CREATE TABLE checking (owner INT, balance INT)")
        .unwrap();
    setup
        .execute("CREATE TABLE savings (owner INT, balance INT)")
        .unwrap();
    setup
        .execute(&format!("INSERT INTO checking VALUES (1, {TOTAL})"))
        .unwrap();
    setup.execute("INSERT INTO savings VALUES (1, 0)").unwrap();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..TRANSFERS_EACH {
                    client
                        .run_txn(64, |c| {
                            c.execute(
                                "UPDATE checking SET balance = balance - 5 WHERE owner = 1",
                            )?;
                            c.execute(
                                "UPDATE savings SET balance = balance + 5 WHERE owner = 1",
                            )?;
                            Ok(())
                        })
                        .unwrap();
                }
                client.close().unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let c = int(&setup.query("SELECT balance FROM checking").unwrap(), 0, 0);
    let s = int(&setup.query("SELECT balance FROM savings").unwrap(), 0, 0);
    assert_eq!(c + s, TOTAL, "balance not conserved: {c} + {s}");
    assert_eq!(s, (CLIENTS * TRANSFERS_EACH) as i64 * 5);

    // The optimistic pipeline was actually exercised remotely.
    let stats = setup.stats().unwrap();
    assert!(stats.commits >= (CLIENTS * TRANSFERS_EACH) as u64);
    server.shutdown();
}

#[test]
fn show_stats_over_the_wire() {
    let (engine, server) = serve_default();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.execute("CREATE TABLE t (x INT)").unwrap();
    client.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    client.query("SELECT x FROM t WHERE x > 100").unwrap();
    // Refresh telemetry crosses the wire too: the DT's initialization is
    // one recorded refresh.
    engine.create_warehouse("wh", 1).unwrap();
    client
        .execute(
            "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
             AS SELECT x FROM t",
        )
        .unwrap();

    // Typed surface.
    let stats = client.stats().unwrap();
    assert!(stats.active_connections >= 1);
    assert!(stats.total_connections >= 1);
    assert!(stats.requests_served >= 3);
    assert!(stats.commits >= 1, "expected commits, got {}", stats.commits);
    assert!(stats.refreshes >= 1, "expected refreshes, got {}", stats.refreshes);
    assert!(stats.refresh_workers >= 1);

    // SQL surface: `SHOW STATS` as (name, value) rows, same numbers.
    let rows = client.query("SHOW STATS").unwrap();
    let mut saw = std::collections::HashMap::new();
    for row in rows.rows() {
        let name = match &row.values()[0] {
            Value::Str(s) => s.clone(),
            other => panic!("expected Str, got {other:?}"),
        };
        let value = match &row.values()[1] {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        };
        saw.insert(name, value);
    }
    for field in [
        "active_connections",
        "total_connections",
        "requests_served",
        "active_txns",
        "commits",
        "conflicts",
        "zone_map_pruned",
        "refreshes",
        "refresh_batches",
        "refresh_workers",
        "wal_appends",
        "wal_batches",
        "wal_fsyncs",
        "wal_bytes",
        "checkpoints",
        "recovery_replayed",
    ] {
        assert!(saw.contains_key(field), "SHOW STATS missing {field}");
    }
    assert!(saw["commits"] >= 1);
    assert!(saw["active_connections"] >= 1);
    assert!(saw["refreshes"] >= 1);
    // An in-memory engine reports an all-zero WAL row set.
    assert_eq!(saw["wal_appends"], 0);
    assert_eq!(saw["wal_fsyncs"], 0);
    server.shutdown();
}

#[test]
fn durable_server_reports_wal_stats_and_survives_restart() {
    let dir = std::env::temp_dir()
        .join(format!("dt-server-e2e-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Serve a durable engine; every remote commit is WAL-logged + fsynced.
    let engine = Engine::open(&dir).unwrap();
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    client.execute("CREATE TABLE t (x INT)").unwrap();
    let before = client.stats().unwrap();
    client.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    client.execute("INSERT INTO t VALUES (3)").unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.wal_appends >= 3, "expected WAL appends, got {}", stats.wal_appends);
    assert!(stats.wal_batches >= 3);
    assert!(stats.wal_bytes > 0);
    // Steady state is one fsync per group-commit batch (segment creation
    // and directory syncs at open time are excluded by the delta).
    assert!(
        stats.wal_fsyncs - before.wal_fsyncs <= stats.wal_batches - before.wal_batches,
        "more than one fsync per batch: {} fsyncs for {} batches",
        stats.wal_fsyncs - before.wal_fsyncs,
        stats.wal_batches - before.wal_batches
    );
    drop(client);
    server.shutdown();

    // Restart the server over the same directory: the data is back and
    // the recovery counter crosses the wire.
    let engine = Engine::open(&dir).unwrap();
    let server = Server::bind(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let rows = client.query("SELECT x FROM t ORDER BY x").unwrap();
    assert_eq!(
        (0..3).map(|i| int(&rows, i, 0)).collect::<Vec<_>>(),
        vec![1, 2, 3]
    );
    let stats = client.stats().unwrap();
    assert!(stats.recovery_replayed > 0, "recovery_replayed not reported");
    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_shutdown_answers_then_drains() {
    let (_engine, server) = serve_default();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    client.execute("CREATE TABLE t (x INT)").unwrap();

    // Shutdown on another thread: it blocks until connections drain.
    let handle = thread::spawn(move || server.shutdown());

    // In-flight requests may still be answered (that's the drain
    // guarantee), but the connection must observe shutdown promptly once
    // the stream of requests has any gap at all.
    let mut evicted = false;
    for _ in 0..200 {
        match client.execute("INSERT INTO t VALUES (1)") {
            Err(ClientError::ShuttingDown) | Err(ClientError::Io(_)) | Err(ClientError::Closed) => {
                evicted = true;
                break;
            }
            Ok(_) => thread::sleep(Duration::from_millis(5)),
            Err(other) => panic!("unexpected error during shutdown: {other:?}"),
        }
    }
    assert!(evicted, "connection never observed shutdown");
    handle.join().unwrap();

    // And brand-new connections are refused outright.
    assert!(TcpStream::connect(addr).is_err() || Client::connect(addr).is_err());
}
