//! Hostile-input hardening over real sockets: garbage handshakes,
//! oversized length prefixes, truncated frames, malformed request
//! payloads, wrong protocol versions, idle peers. In every case the
//! server must answer with a typed protocol error or close cleanly —
//! never hang, never panic, never poison other connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dynamic_tables::client::{Client, ClientError};
use dynamic_tables::core::{DbConfig, Engine};
use dynamic_tables::server::{Server, ServerConfig};
use dynamic_tables::wire::{
    read_frame, write_frame, Hello, Request, Response, WireError, DEFAULT_MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};

fn serve(config: ServerConfig) -> Server {
    let engine = Engine::new(DbConfig::default());
    Server::bind(engine, "127.0.0.1:0", config).unwrap()
}

/// After abusing the server, prove it still serves well-behaved peers.
fn assert_still_alive(server: &Server) {
    let mut client = Client::connect(server.local_addr()).unwrap();
    let rows = client.query("SELECT 1").unwrap();
    assert_eq!(rows.len(), 1);
    client.close().unwrap();
}

fn read_one_response(stream: &mut TcpStream) -> Option<Response> {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let payload = read_frame(stream, DEFAULT_MAX_FRAME_LEN).ok()??;
    Response::decode(&payload).ok()
}

#[test]
fn garbage_handshake_gets_typed_error_and_close() {
    let server = serve(ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    write_frame(&mut stream, b"\xde\xad\xbe\xef not a hello").unwrap();
    match read_one_response(&mut stream) {
        Some(Response::Err(WireError::Protocol(_))) | None => {}
        other => panic!("expected protocol error or close, got {other:?}"),
    }
    // The connection is closed afterwards: reads drain to EOF.
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert_still_alive(&server);
    server.shutdown();
}

#[test]
fn wrong_protocol_version_is_refused_in_band() {
    let server = serve(ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let hello = Hello {
        version: PROTOCOL_VERSION + 41,
    };
    write_frame(&mut stream, &hello.encode()).unwrap();
    match read_one_response(&mut stream) {
        Some(Response::Err(WireError::Protocol(msg))) => {
            assert!(msg.contains("version"), "unhelpful message: {msg}");
        }
        other => panic!("expected version error, got {other:?}"),
    }
    assert_still_alive(&server);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_capped_before_allocation() {
    let server = serve(ServerConfig {
        max_frame_len: 1024,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Announce a 3 GiB payload; send nothing else.
    stream
        .write_all(&(3_000_000_000u32).to_le_bytes())
        .unwrap();
    stream.flush().unwrap();
    match read_one_response(&mut stream) {
        Some(Response::Err(WireError::Protocol(msg))) => {
            assert!(msg.contains("exceeds"), "unhelpful message: {msg}");
        }
        None => {} // already closed — also clean
        other => panic!("expected frame-cap error, got {other:?}"),
    }
    assert_still_alive(&server);
    server.shutdown();
}

#[test]
fn truncated_frame_then_hangup_does_not_wedge_the_server() {
    let server = serve(ServerConfig::default());
    {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        // Promise 100 bytes, deliver 3, vanish.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(b"abc").unwrap();
        stream.flush().unwrap();
    }
    assert_still_alive(&server);
    server.shutdown();
}

#[test]
fn malformed_request_after_valid_handshake_keeps_connection_usable() {
    let server = serve(ServerConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let hello = Hello {
        version: PROTOCOL_VERSION,
    };
    write_frame(&mut stream, &hello.encode()).unwrap();
    assert!(matches!(
        read_one_response(&mut stream),
        Some(Response::Hello { .. })
    ));

    // A frame whose payload is garbage: framing stayed intact, so the
    // server answers typed and keeps the connection.
    write_frame(&mut stream, &[0xff, 0x00, 0x13, 0x37]).unwrap();
    match read_one_response(&mut stream) {
        Some(Response::Err(WireError::Protocol(_))) => {}
        other => panic!("expected typed protocol error, got {other:?}"),
    }

    // Proof of usability: a valid request on the same socket succeeds.
    let req = Request::Query {
        sql: "SELECT 1".into(),
    };
    write_frame(&mut stream, &req.encode()).unwrap();
    match read_one_response(&mut stream) {
        Some(Response::Rows(rows)) => assert_eq!(rows.len(), 1),
        other => panic!("expected rows, got {other:?}"),
    }
    assert_still_alive(&server);
    server.shutdown();
}

#[test]
fn random_garbage_streams_never_take_the_server_down() {
    let server = serve(ServerConfig {
        max_frame_len: 4096,
        ..ServerConfig::default()
    });
    // A deterministic pseudo-random byte salad (no RNG dependency):
    // every prefix ends up interpreted as some frame header + payload.
    let mut state = 0x9e3779b97f4a7c15u64;
    for round in 0..8 {
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut junk = Vec::with_capacity(256 + round * 64);
        for _ in 0..junk.capacity() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            junk.push((state >> 33) as u8);
        }
        let _ = stream.write_all(&junk);
        let _ = stream.flush();
        // Whatever the server makes of it, it must answer or close —
        // drain until EOF with a bounded timeout.
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut sink = Vec::new();
        let _ = stream.read_to_end(&mut sink);
    }
    assert_still_alive(&server);
    server.shutdown();
}

#[test]
fn idle_connection_is_timed_out_with_a_typed_error() {
    let server = serve(ServerConfig {
        idle_timeout: Duration::from_millis(150),
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let hello = Hello {
        version: PROTOCOL_VERSION,
    };
    write_frame(&mut stream, &hello.encode()).unwrap();
    assert!(matches!(
        read_one_response(&mut stream),
        Some(Response::Hello { .. })
    ));
    // Send nothing; the server evicts us with a typed error.
    match read_one_response(&mut stream) {
        Some(Response::Err(WireError::Protocol(msg))) => {
            assert!(msg.contains("idle"), "unhelpful message: {msg}");
        }
        other => panic!("expected idle-timeout error, got {other:?}"),
    }
    assert_still_alive(&server);
    server.shutdown();
}

#[test]
fn client_surfaces_busy_and_protocol_errors_distinctly() {
    let server = serve(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let _holder = Client::connect(addr).unwrap();
    let err = Client::connect(addr).unwrap_err();
    assert!(err.is_busy());
    assert!(!err.is_conflict());
    match err {
        ClientError::Busy { limit, .. } => assert_eq!(limit, 1),
        other => panic!("expected Busy, got {other:?}"),
    }
    server.shutdown();
}
