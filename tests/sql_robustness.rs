//! Robustness: the SQL front end must never panic — any byte soup either
//! parses or returns a structured error (user errors fail a single
//! statement or refresh, never the process; §3.3.3's error model depends
//! on this).

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, .. ProptestConfig::default() })]

    #[test]
    fn arbitrary_bytes_never_panic_the_parser(s in "\\PC{0,120}") {
        let _ = dt_sql::parse(&s);
    }

    #[test]
    fn arbitrary_token_soup_never_panics(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "select", "from", "where", "group", "by", "join", "on", "(", ")",
                "1", "'x'", "+", "*", ",", "a", "b", "count", "over", "partition",
                "union", "all", "order", "limit", "case", "when", "then", "end",
                "create", "dynamic", "table", "as", "::", "int", "not", "in",
            ]),
            0..25,
        )
    ) {
        let sql = words.join(" ");
        let _ = dt_sql::parse(&sql);
    }

    /// Statements that do parse can be fed to a database without panics.
    #[test]
    fn parsed_statements_execute_or_error_cleanly(
        n in 0..1000i64,
        name in "[a-z]{1,8}",
    ) {
        let engine = dt_core::Engine::new(dt_core::DbConfig::default());
        engine.create_warehouse("wh", 1).unwrap();
        let db = engine.session();
        // These may succeed or fail (unknown tables etc.) but never panic.
        let _ = db.execute(&format!("CREATE TABLE {name} (x INT)"));
        let _ = db.execute(&format!("INSERT INTO {name} VALUES ({n})"));
        let _ = db.execute(&format!("SELECT x + {n} FROM {name}"));
        let _ = db.execute(&format!("SELECT * FROM missing_{name}"));
        let _ = db.execute(&format!(
            "CREATE DYNAMIC TABLE d_{name} TARGET_LAG = '1 minute' WAREHOUSE = wh \
             AS SELECT x FROM {name}"
        ));
        let _ = db.execute(&format!("DELETE FROM {name} WHERE x = {n}"));
        let _ = db.execute(&format!("DROP TABLE {name}"));
    }
}

#[test]
fn malformed_placeholder_usage_errors_cleanly() {
    use dt_common::Value;
    let engine = dt_core::Engine::new(dt_core::DbConfig::default());
    engine.create_warehouse("wh", 1).unwrap();
    let session = engine.session();
    session.execute("CREATE TABLE t (k INT)").unwrap();
    session.execute("INSERT INTO t VALUES (1)").unwrap();

    // `?` outside a prepared statement is rejected up front.
    let err = session.execute("SELECT * FROM t WHERE k = ?").unwrap_err();
    assert!(matches!(err, dt_common::DtError::Binding(_)), "{err}");

    // `?` in DDL is rejected at prepare time AND at raw-execute time, with
    // an error that doesn't point at an API that would also refuse it.
    let ddl = "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
               AS SELECT k FROM t WHERE k = ?";
    let err = session.prepare(ddl).unwrap_err();
    assert!(matches!(err, dt_common::DtError::Unsupported(_)), "{err}");
    let err = session.execute(ddl).unwrap_err();
    assert!(matches!(err, dt_common::DtError::Unsupported(_)), "{err}");

    // No-binding entry points (time travel, isolation analysis) reject
    // placeholders instead of silently returning empty results.
    let err = session
        .query_at("SELECT * FROM t WHERE k = ?", engine.now())
        .unwrap_err();
    assert!(matches!(err, dt_common::DtError::Binding(_)), "{err}");
    let err = session
        .query_isolation_level("SELECT * FROM t WHERE k = ?")
        .unwrap_err();
    assert!(matches!(err, dt_common::DtError::Binding(_)), "{err}");

    // Too few / too many bindings are arity errors, not silent NULLs.
    let stmt = session.prepare("SELECT * FROM t WHERE k = ?").unwrap();
    let err = stmt.query(&[]).unwrap_err();
    assert!(matches!(err, dt_common::DtError::Binding(_)), "{err}");
    let err = stmt
        .query(&[Value::Int(1), Value::Int(2)])
        .unwrap_err();
    assert!(matches!(err, dt_common::DtError::Binding(_)), "{err}");

    // `?` placeholder soup never panics the front end.
    for sql in [
        "SELECT ?",
        "SELECT ? FROM ? WHERE ?",
        "INSERT INTO t VALUES (?, ?,)",
        "?",
        "SELECT * FROM t WHERE k IN (?, ?, ?)",
    ] {
        let _ = dt_sql::parse(sql);
    }
}

#[test]
fn error_messages_are_structured_and_positioned() {
    let err = dt_sql::parse("SELECT 1 +").unwrap_err();
    assert!(matches!(err, dt_common::DtError::Parse { .. }));
    let err = dt_sql::parse("SELECT 'unterminated").unwrap_err();
    assert!(matches!(err, dt_common::DtError::Lex { .. }));
    let err = dt_sql::parse("CREATE DYNAMIC TABLE t AS SELECT 1").unwrap_err();
    // Missing TARGET_LAG is a parse error naming the requirement.
    let dt_common::DtError::Parse { message, .. } = err else {
        panic!()
    };
    assert!(message.contains("TARGET_LAG"));
}
