//! Property tests for the storage substrate: the copy-on-write version
//! chain must behave like a simple multiset model, and change scans must
//! reconcile any two versions.

use dt_common::{row, Row, Schema, Column, DataType, Timestamp, TxnId};
use dt_storage::{ChangeSet, TableStore};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum StoreOp {
    Insert(Vec<i64>),
    DeleteOne(usize),
    Recluster,
    Overwrite(Vec<i64>),
}

fn op_strategy() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        prop::collection::vec(0..20i64, 1..6).prop_map(StoreOp::Insert),
        (0..100usize).prop_map(StoreOp::DeleteOne),
        Just(StoreOp::Recluster),
        prop::collection::vec(0..20i64, 0..4).prop_map(StoreOp::Overwrite),
    ]
}

fn apply_changes(mut rows: Vec<Row>, cs: &ChangeSet) -> Vec<Row> {
    for d in cs.deletes() {
        let pos = rows.iter().position(|r| r == d).expect("delete must exist");
        rows.swap_remove(pos);
    }
    rows.extend(cs.inserts().iter().cloned());
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn version_chain_matches_multiset_model(
        ops in prop::collection::vec(op_strategy(), 1..25),
        partition_capacity in 1..8usize,
    ) {
        let store = TableStore::with_partition_capacity(
            Schema::new(vec![Column::new("x", DataType::Int)]),
            Timestamp::EPOCH,
            TxnId(0),
            partition_capacity,
        );
        // Model: the multiset of rows, snapshotted at every version.
        let mut model: Vec<Row> = vec![];
        let mut snapshots: Vec<Vec<Row>> = vec![vec![]];
        let mut ts = 1i64;
        for op in &ops {
            match op {
                StoreOp::Insert(vals) => {
                    let rows: Vec<Row> = vals.iter().map(|v| row!(*v)).collect();
                    store
                        .commit_change(rows.clone(), vec![], Timestamp::from_secs(ts), TxnId(1))
                        .unwrap();
                    model.extend(rows);
                }
                StoreOp::DeleteOne(idx) => {
                    if model.is_empty() {
                        continue;
                    }
                    let victim = model[idx % model.len()].clone();
                    store
                        .commit_change(vec![], vec![victim.clone()], Timestamp::from_secs(ts), TxnId(1))
                        .unwrap();
                    let pos = model.iter().position(|r| *r == victim).unwrap();
                    model.swap_remove(pos);
                }
                StoreOp::Recluster => {
                    store.recluster(Timestamp::from_secs(ts), TxnId(1)).unwrap();
                }
                StoreOp::Overwrite(vals) => {
                    let rows: Vec<Row> = vals.iter().map(|v| row!(*v)).collect();
                    store
                        .overwrite(rows.clone(), Timestamp::from_secs(ts), TxnId(1))
                        .unwrap();
                    model = rows;
                }
            }
            ts += 1;
            let mut snap = model.clone();
            snap.sort();
            snapshots.push(snap);
        }

        // 1. Every historical version scans to its model snapshot.
        for (v, snap) in snapshots.iter().enumerate() {
            let mut got = store.scan(dt_common::VersionId(v as u64)).unwrap();
            got.sort();
            prop_assert_eq!(&got, snap, "version {}", v);
        }

        // 2. Change scans reconcile any version pair (i <= j).
        let n = snapshots.len();
        for i in 0..n {
            for j in i..n {
                let cs = store
                    .changes_between(dt_common::VersionId(i as u64), dt_common::VersionId(j as u64))
                    .unwrap();
                let got = apply_changes(snapshots[i].clone(), &cs);
                prop_assert_eq!(&got, &snapshots[j], "interval ({}, {}]", i, j);
                // 3. unchanged_between agrees with the change scan.
                let unchanged = store
                    .unchanged_between(dt_common::VersionId(i as u64), dt_common::VersionId(j as u64))
                    .unwrap();
                prop_assert_eq!(unchanged, snapshots[i] == snapshots[j]);
            }
        }

        // 4. Time travel: version_at of each commit timestamp resolves to
        // the matching version.
        for v in 1..n {
            let resolved = store.version_at(Timestamp::from_secs(v as i64));
            prop_assert_eq!(resolved, Some(dt_common::VersionId(v as u64)));
        }
    }

    #[test]
    fn consolidation_is_idempotent_and_weight_preserving(
        ins in prop::collection::vec(0..10i64, 0..20),
        del in prop::collection::vec(0..10i64, 0..20),
    ) {
        let cs = ChangeSet::new(
            ins.iter().map(|v| row!(*v)).collect(),
            del.iter().map(|v| row!(*v)).collect(),
        );
        let c1 = cs.clone().consolidate();
        let c2 = c1.clone().consolidate();
        prop_assert_eq!(&c1, &c2, "idempotence");
        // Net weight per row value is preserved.
        for v in 0..10i64 {
            let r = row!(v);
            let before = cs.inserts().iter().filter(|x| **x == r).count() as i64
                - cs.deletes().iter().filter(|x| **x == r).count() as i64;
            let after = c1.inserts().iter().filter(|x| **x == r).count() as i64
                - c1.deletes().iter().filter(|x| **x == r).count() as i64;
            prop_assert_eq!(before, after, "weight of {}", v);
        }
        // No row appears on both sides after consolidation.
        for i in c1.inserts() {
            prop_assert!(!c1.deletes().contains(i));
        }
    }
}
