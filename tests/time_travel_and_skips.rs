//! Time travel, skip semantics, and frontier behaviour across refreshes.

use dt_common::{row, Duration, Timestamp};
use dt_core::{DbConfig, Engine};
use dt_scheduler::CostModel;

#[test]
fn dt_time_travel_history_tracks_refreshes() {
    let cfg = DbConfig { validate_dvs: true, ..DbConfig::default() };
    let eng = Engine::new(cfg);
    let db = eng.session();
    eng.create_warehouse("wh", 2).unwrap();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    eng.clock().advance(Duration::from_secs(100));
    let after_init = eng.now();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();

    // Time travel to before the second refresh shows the old contents.
    let rows = db.query_at("SELECT k FROM d", after_init).unwrap().into_rows();
    assert_eq!(rows, vec![row!(1i64)]);
    let rows = db
        .query_at("SELECT k FROM d", eng.now())
        .unwrap()
        .into_sorted_rows();
    assert_eq!(rows, vec![row!(1i64), row!(2i64)]);
}

#[test]
fn skipped_refreshes_reduce_time_travel_granularity_but_not_correctness() {
    // §3.3.3: a skip leaves no time-travel entry for the skipped data
    // timestamp, and the following refresh covers the whole interval.
    let cfg = DbConfig {
        validate_dvs: true,
        // Heavy refreshes: ~100 s on one node, period 48 s → skips.
        cost_model: CostModel {
            fixed_units: 100_000.0,
            unit_per_row: 1.0,
        },
        ..DbConfig::default()
    };
    let eng = Engine::new(cfg);
    let db = eng.session();
    eng.create_warehouse("wh", 1).unwrap();
    db.execute("CREATE TABLE t (k INT, v INT)").unwrap();
    db.execute("INSERT INTO t VALUES (0, 0)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, sum(v) s FROM t GROUP BY k",
    )
    .unwrap();
    // 10 minutes of DML every 20 s.
    let mut t = Timestamp::EPOCH;
    let mut i = 0;
    while t < Timestamp::from_secs(600) {
        t = t.add(Duration::from_secs(20));
        eng.run_scheduler_until(t).unwrap();
        i += 1;
        db.execute(&format!("INSERT INTO t VALUES ({}, {i})", i % 3)).unwrap();
    }
    eng.run_scheduler_until(Timestamp::from_secs(600)).unwrap();
    eng.inspect(|s| {
        let id = s.catalog().resolve("d").unwrap().id;
        let st = s.scheduler().state(id).unwrap();
        assert!(st.skipped_total > 0, "expected skips under pressure");
        // Every executed refresh upheld DVS (validate_dvs checked), and the
        // refresh count is below the grid-point count by the skip count.
        let refreshes: u64 = st.action_counts.values().sum();
        assert!(refreshes + st.skipped_total <= 600 / 48 + 1);
    });
}

#[test]
fn frontier_only_moves_forward_under_mixed_refresh_kinds() {
    let cfg = DbConfig { validate_dvs: true, ..DbConfig::default() };
    let eng = Engine::new(cfg);
    let db = eng.session();
    eng.create_warehouse("wh", 4).unwrap();
    db.execute("CREATE TABLE a (k INT)").unwrap();
    db.execute("CREATE TABLE b (k INT)").unwrap();
    db.execute("INSERT INTO a VALUES (1)").unwrap();
    db.execute("INSERT INTO b VALUES (2)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k FROM a UNION ALL SELECT k FROM b",
    )
    .unwrap();
    // Alternate DML on a and b; manual + scheduled refreshes interleave.
    for i in 0..5 {
        db.execute(&format!("INSERT INTO a VALUES ({i})")).unwrap();
        db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
        db.execute(&format!("INSERT INTO b VALUES ({i})")).unwrap();
        let next = eng.now().add(Duration::from_secs(60));
        eng.run_scheduler_until(next).unwrap();
    }
    db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
    let rows = db.query_sorted("SELECT k FROM d").unwrap();
    assert_eq!(rows.len(), 12); // 2 seed + 10 inserts
}

#[test]
fn no_data_refreshes_advance_data_timestamp_without_new_versions() {
    let eng = Engine::new(DbConfig::default());
    let db = eng.session();
    eng.create_warehouse("wh", 2).unwrap();
    db.execute("CREATE TABLE t (k INT)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    db.execute(
        "CREATE DYNAMIC TABLE d TARGET_LAG = '1 minute' WAREHOUSE = wh AS SELECT k FROM t",
    )
    .unwrap();
    // Three manual refreshes with no DML: all NO_DATA.
    for _ in 0..3 {
        eng.clock().advance(Duration::from_secs(60));
        db.execute("ALTER DYNAMIC TABLE d REFRESH").unwrap();
        assert_eq!(eng.refresh_log().last().unwrap().action, "no_data");
    }
    // The scheduler's data timestamp advanced with each NO_DATA refresh.
    eng.inspect(|s| {
        let id = s.catalog().resolve("d").unwrap().id;
        let st = s.scheduler().state(id).unwrap();
        assert_eq!(st.action_counts["no_data"], 3);
    });
}
