//! First-class transaction lifecycle: snapshot-pinned repeatable reads,
//! buffered DML with atomic first-committer-wins commit, SQL
//! `BEGIN`/`COMMIT`/`ROLLBACK` through the session, and DSG certification
//! that the histories the engine produces are free of the G0/G1
//! phenomena.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use dynamic_tables::core::{is_serialization_conflict, DbConfig, Engine};
use dynamic_tables::isolation::{analyze, History};
use dt_common::{row, DtError, EntityId, TxnId, Value};
use dt_storage::TableStore;

fn wait_until(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..5000 {
        if cond() {
            return;
        }
        thread::sleep(Duration::from_millis(1));
    }
    panic!("timed out waiting for {what}");
}

fn store_of(engine: &Engine, table: &str) -> (EntityId, Arc<TableStore>) {
    engine.inspect(|st| {
        let id = st.catalog().resolve(table).unwrap().id;
        (id, Arc::clone(st.table_store(id).unwrap()))
    })
}

fn engine_with_accounts() -> Engine {
    let engine = Engine::new(DbConfig::default());
    let s = engine.session();
    s.execute("CREATE TABLE checking (owner INT, balance INT)").unwrap();
    s.execute("CREATE TABLE savings (owner INT, balance INT)").unwrap();
    s.execute("INSERT INTO checking VALUES (1, 100), (2, 100)").unwrap();
    s.execute("INSERT INTO savings VALUES (1, 50), (2, 50)").unwrap();
    engine
}

#[test]
fn reads_are_repeatable_while_writers_commit() {
    let engine = engine_with_accounts();
    let s = engine.session();
    let txn = s.begin();
    let before = txn.query_sorted("SELECT * FROM checking").unwrap();
    // Another session commits DML mid-transaction.
    let other = engine.session();
    other.execute("INSERT INTO checking VALUES (3, 900)").unwrap();
    other.execute("UPDATE checking SET balance = 0 WHERE owner = 1").unwrap();
    // Re-reads inside the transaction are byte-identical.
    assert_eq!(txn.query_sorted("SELECT * FROM checking").unwrap(), before);
    txn.commit().unwrap();
    // A fresh statement sees the other session's writes.
    assert_eq!(s.query("SELECT * FROM checking").unwrap().len(), 3);
}

#[test]
fn reads_are_repeatable_while_refreshes_land() {
    let engine = Engine::new(DbConfig::default());
    engine.create_warehouse("wh", 4).unwrap();
    let s = engine.session();
    s.execute("CREATE TABLE src (k INT, v INT)").unwrap();
    s.execute("INSERT INTO src VALUES (1, 10), (2, 20)").unwrap();
    s.execute(
        "CREATE DYNAMIC TABLE agg TARGET_LAG = '1 minute' WAREHOUSE = wh \
         AS SELECT k, sum(v) total FROM src GROUP BY k",
    )
    .unwrap();

    let txn = s.begin();
    let pinned = txn.query_sorted("SELECT * FROM agg").unwrap();
    assert_eq!(pinned, vec![row!(1i64, 10i64), row!(2i64, 20i64)]);

    // A refresh lands while the transaction is open...
    let other = engine.session();
    other.execute("INSERT INTO src VALUES (1, 90)").unwrap();
    other.manual_refresh("agg").unwrap();
    assert_eq!(
        other.query_sorted("SELECT * FROM agg").unwrap(),
        vec![row!(1i64, 100i64), row!(2i64, 20i64)]
    );

    // ...and the transaction still sees its pinned frontier, repeatably.
    assert_eq!(txn.query_sorted("SELECT * FROM agg").unwrap(), pinned);
    assert_eq!(txn.query_sorted("SELECT * FROM agg").unwrap(), pinned);
    txn.commit().unwrap();
}

#[test]
fn buffered_dml_is_invisible_until_commit_then_atomic() {
    let engine = engine_with_accounts();
    let s = engine.session();
    let observer = engine.session();

    let mut txn = s.begin();
    txn.execute("UPDATE checking SET balance = balance - 30 WHERE owner = 1").unwrap();
    txn.execute("UPDATE savings SET balance = balance + 30 WHERE owner = 1").unwrap();

    // Read-your-own-writes inside the transaction...
    assert_eq!(
        txn.query_sorted("SELECT balance FROM checking WHERE owner = 1").unwrap(),
        vec![row!(70i64)]
    );
    // ...but nothing published: an outside observer still sees the old state.
    assert_eq!(
        observer.query_sorted("SELECT balance FROM checking WHERE owner = 1").unwrap(),
        vec![row!(100i64)]
    );

    let commit_ts = txn.commit().unwrap();
    // Both tables flipped atomically at one commit timestamp.
    assert_eq!(
        observer.query_sorted("SELECT balance FROM checking WHERE owner = 1").unwrap(),
        vec![row!(70i64)]
    );
    assert_eq!(
        observer.query_sorted("SELECT balance FROM savings WHERE owner = 1").unwrap(),
        vec![row!(80i64)]
    );
    // Time travel to just before the commit sees the untouched state of
    // *both* tables — there is no instant where only one was applied.
    let just_before = dt_common::Timestamp::from_micros(commit_ts.as_micros() - 1);
    let before = observer
        .query_at("SELECT balance FROM checking WHERE owner = 1", just_before)
        .unwrap();
    assert_eq!(before.rows(), &[row!(100i64)]);
}

#[test]
fn write_write_conflict_first_committer_wins() {
    let engine = engine_with_accounts();
    let s = engine.session();
    let mut t1 = s.begin();
    let mut t2 = s.begin();
    t1.execute("UPDATE checking SET balance = 1 WHERE owner = 1").unwrap();
    t2.execute("UPDATE checking SET balance = 2 WHERE owner = 1").unwrap();
    t1.commit().unwrap();
    let err = t2.commit().unwrap_err();
    assert!(is_serialization_conflict(&err), "got {err:?}");
    // The winner's write survives; the loser's is discarded entirely.
    assert_eq!(
        s.query_sorted("SELECT balance FROM checking WHERE owner = 1").unwrap(),
        vec![row!(1i64)]
    );
}

#[test]
fn disjoint_tables_commit_concurrently_without_conflict() {
    let engine = engine_with_accounts();
    let s = engine.session();
    let mut t1 = s.begin();
    let mut t2 = s.begin();
    t1.execute("INSERT INTO checking VALUES (7, 1)").unwrap();
    t2.execute("INSERT INTO savings VALUES (7, 1)").unwrap();
    // Both commit: their lock sets are disjoint, so neither is the other's
    // first committer.
    t1.commit().unwrap();
    t2.commit().unwrap();
    assert_eq!(s.query("SELECT * FROM checking").unwrap().len(), 3);
    assert_eq!(s.query("SELECT * FROM savings").unwrap().len(), 3);
}

#[test]
fn commit_is_per_table_not_engine_wide() {
    // A transaction on table A is mid-commit (holds A's TxnManager lock).
    // A transaction on table B commits anyway — the write path locks per
    // table, not one engine-wide lock; and a third transaction on A
    // conflicts immediately.
    let engine = engine_with_accounts();
    let s = engine.session();

    // Hold checking's per-table lock the way an in-flight committer does.
    let (holder, checking_id) = engine.inspect(|st| {
        let id = st.catalog().resolve("checking").unwrap().id;
        let t = st.txn_manager().begin();
        st.txn_manager().try_lock(&t, id).unwrap();
        (t, id)
    });

    // Disjoint table: commits while checking is locked.
    let mut on_savings = s.begin();
    on_savings.execute("INSERT INTO savings VALUES (9, 9)").unwrap();
    on_savings.commit().unwrap();

    // Same table: conflicts fast instead of waiting.
    let mut on_checking = s.begin();
    on_checking.execute("INSERT INTO checking VALUES (9, 9)").unwrap();
    let err = on_checking.commit().unwrap_err();
    assert!(is_serialization_conflict(&err), "got {err:?}");

    engine.inspect(|st| {
        st.txn_manager().abort(&holder).unwrap();
        assert!(!st.txn_manager().is_locked(checking_id));
    });
}

#[test]
fn overlapping_writers_one_commit_one_abort() {
    // The acceptance scenario, with real threads: two transactions racing
    // on the same table produce exactly one commit and one conflict abort.
    let engine = engine_with_accounts();
    let commits = Arc::new(AtomicUsize::new(0));
    let aborts = Arc::new(AtomicUsize::new(0));
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let mut handles = Vec::new();
    for i in 0..2 {
        let engine = engine.clone();
        let commits = Arc::clone(&commits);
        let aborts = Arc::clone(&aborts);
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            let s = engine.session();
            let mut txn = s.begin();
            txn.execute(&format!(
                "UPDATE checking SET balance = {i} WHERE owner = 2"
            ))
            .unwrap();
            barrier.wait();
            match txn.commit() {
                Ok(_) => commits.fetch_add(1, Ordering::SeqCst),
                Err(e) => {
                    assert!(is_serialization_conflict(&e), "got {e:?}");
                    aborts.fetch_add(1, Ordering::SeqCst)
                }
            };
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(commits.load(Ordering::SeqCst), 1, "exactly one winner");
    assert_eq!(aborts.load(Ordering::SeqCst), 1, "exactly one conflict abort");
    // The surviving balance belongs to one of the two writers.
    let s = engine.session();
    let rows = s.query_sorted("SELECT balance FROM checking WHERE owner = 2").unwrap();
    assert!(rows == vec![row!(0i64)] || rows == vec![row!(1i64)]);
}

#[test]
fn rollback_discards_buffered_dml() {
    let engine = engine_with_accounts();
    let s = engine.session();
    let mut txn = s.begin();
    txn.execute("DELETE FROM checking").unwrap();
    txn.execute("INSERT INTO checking VALUES (42, 42)").unwrap();
    assert_eq!(txn.query("SELECT * FROM checking").unwrap().len(), 1);
    txn.rollback().unwrap();
    // Nothing happened.
    assert_eq!(
        s.query_sorted("SELECT * FROM checking").unwrap(),
        vec![row!(1i64, 100i64), row!(2i64, 100i64)]
    );
}

#[test]
fn dropped_transaction_rolls_back_and_leaks_no_locks() {
    let engine = engine_with_accounts();
    let s = engine.session();
    {
        let mut txn = s.begin();
        txn.execute("INSERT INTO checking VALUES (8, 8)").unwrap();
        // Dropped without commit or rollback.
    }
    assert_eq!(s.query("SELECT * FROM checking").unwrap().len(), 2);
    // No lock leaked: a follow-up transaction on the same table commits.
    let mut txn = s.begin();
    txn.execute("INSERT INTO checking VALUES (8, 8)").unwrap();
    txn.commit().unwrap();
    assert_eq!(s.query("SELECT * FROM checking").unwrap().len(), 3);
    let checking = engine.inspect(|st| st.catalog().resolve("checking").unwrap().id);
    engine.inspect(|st| assert!(!st.txn_manager().is_locked(checking)));
}

#[test]
fn sql_begin_commit_rollback_lifecycle() {
    let engine = engine_with_accounts();
    let s = engine.session();
    assert!(!s.in_transaction());

    s.execute("BEGIN").unwrap();
    assert!(s.in_transaction());
    s.execute("UPDATE savings SET balance = 0 WHERE owner = 1").unwrap();
    // Reads inside the SQL transaction see the buffered write...
    assert_eq!(
        s.query_sorted("SELECT balance FROM savings WHERE owner = 1").unwrap(),
        vec![row!(0i64)]
    );
    // ...while another session does not.
    let other = engine.session();
    assert_eq!(
        other.query_sorted("SELECT balance FROM savings WHERE owner = 1").unwrap(),
        vec![row!(50i64)]
    );
    s.execute("COMMIT").unwrap();
    assert!(!s.in_transaction());
    assert_eq!(
        other.query_sorted("SELECT balance FROM savings WHERE owner = 1").unwrap(),
        vec![row!(0i64)]
    );

    // ROLLBACK path.
    s.execute("START TRANSACTION").unwrap();
    s.execute("DELETE FROM savings").unwrap();
    s.execute("ROLLBACK").unwrap();
    assert!(!s.in_transaction());
    assert_eq!(other.query("SELECT * FROM savings").unwrap().len(), 2);
}

#[test]
fn nested_begin_and_stray_commit_rollback_error() {
    let engine = engine_with_accounts();
    let s = engine.session();

    // Stray COMMIT / ROLLBACK: no transaction in progress.
    let err = s.execute("COMMIT").unwrap_err();
    assert!(matches!(err, DtError::Txn(_)), "got {err:?}");
    let err = s.execute("ROLLBACK").unwrap_err();
    assert!(matches!(err, DtError::Txn(_)), "got {err:?}");

    // Nested BEGIN rejected; the outer transaction survives.
    s.execute("BEGIN").unwrap();
    let err = s.execute("BEGIN TRANSACTION").unwrap_err();
    assert!(matches!(err, DtError::Txn(_)), "got {err:?}");
    assert!(s.in_transaction());
    s.execute("ROLLBACK").unwrap();
    assert!(!s.in_transaction());
}

#[test]
fn ddl_and_refresh_rejected_inside_transactions() {
    let engine = engine_with_accounts();
    let s = engine.session();
    s.execute("BEGIN").unwrap();
    for sql in [
        "CREATE TABLE nope (x INT)",
        "DROP TABLE checking",
        "ALTER DYNAMIC TABLE whatever REFRESH",
    ] {
        let err = s.execute(sql).unwrap_err();
        assert!(matches!(err, DtError::Unsupported(_)), "{sql}: got {err:?}");
    }
    s.execute("ROLLBACK").unwrap();
    // Outside a transaction DDL works again.
    s.execute("CREATE TABLE yep (x INT)").unwrap();
}

#[test]
fn prepared_statements_join_the_open_sql_transaction() {
    let engine = engine_with_accounts();
    let s = engine.session();
    let read = s.prepare("SELECT balance FROM checking WHERE owner = ?").unwrap();
    let write = s.prepare("UPDATE checking SET balance = ? WHERE owner = ?").unwrap();

    s.execute("BEGIN").unwrap();
    write.execute(&[Value::Int(7), Value::Int(1)]).unwrap();
    // The prepared read sees the buffered write (read-your-own-writes)...
    assert_eq!(
        read.query(&[Value::Int(1)]).unwrap().rows(),
        &[row!(7i64)]
    );
    // ...and other sessions see nothing until COMMIT.
    let other = engine.session();
    assert_eq!(
        other.query_sorted("SELECT balance FROM checking WHERE owner = 1").unwrap(),
        vec![row!(100i64)]
    );
    s.execute("COMMIT").unwrap();
    assert_eq!(
        other.query_sorted("SELECT balance FROM checking WHERE owner = 1").unwrap(),
        vec![row!(7i64)]
    );
    // After the transaction, the prepared statement runs auto-commit again.
    assert_eq!(read.query(&[Value::Int(1)]).unwrap().rows(), &[row!(7i64)]);
}

#[test]
fn time_travel_transaction_pins_an_old_frontier() {
    let engine = engine_with_accounts();
    let s = engine.session();
    let before = engine.inspect(|st| st.txn_manager().hlc().tick());
    s.execute("UPDATE checking SET balance = 0 WHERE owner = 1").unwrap();

    let txn = s.begin_at(before);
    assert_eq!(
        txn.query_sorted("SELECT balance FROM checking WHERE owner = 1").unwrap(),
        vec![row!(100i64)]
    );
    txn.commit().unwrap();

    // A *writing* time-travel transaction conflicts if the table moved
    // after its pinned instant — the begin frontier is stale by
    // construction.
    let mut stale = s.begin_at(before);
    stale.execute("INSERT INTO checking VALUES (5, 5)").unwrap();
    let err = stale.commit().unwrap_err();
    assert!(is_serialization_conflict(&err), "got {err:?}");
}

#[test]
fn autocommit_dml_retries_past_conflicts() {
    // Hammer one table from several threads with single-statement DML:
    // the auto-commit path must absorb write-write conflicts internally
    // (retry) so every statement succeeds, exactly like the pre-MVCC
    // serialized write path did.
    let engine = engine_with_accounts();
    let threads = 4;
    let per_thread = 25;
    let mut handles = Vec::new();
    for t in 0..threads {
        let engine = engine.clone();
        handles.push(thread::spawn(move || {
            let s = engine.session();
            for i in 0..per_thread {
                s.execute(&format!(
                    "INSERT INTO checking VALUES ({}, {i})",
                    100 + t
                ))
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = engine.session();
    assert_eq!(
        s.query("SELECT * FROM checking").unwrap().len(),
        2 + threads * per_thread
    );
}

#[test]
fn concurrent_drop_of_touched_table_conflicts_instead_of_losing_writes() {
    let engine = engine_with_accounts();
    let s = engine.session();
    let mut txn = s.begin();
    txn.execute("INSERT INTO checking VALUES (5, 5)").unwrap();
    // Another session drops the table mid-transaction. The store survives
    // for UNDROP, so version validation alone would pass — the commit
    // must still refuse rather than write into the orphaned store.
    let other = engine.session();
    other.execute("DROP TABLE checking").unwrap();
    let err = txn.commit().unwrap_err();
    assert!(is_serialization_conflict(&err), "got {err:?}");
    // After UNDROP the old contents are back, without the lost write.
    other.execute("UNDROP TABLE checking").unwrap();
    assert_eq!(other.query("SELECT * FROM checking").unwrap().len(), 2);
}

#[test]
fn prepared_dml_retries_past_conflicts_like_plain_execute() {
    // Prepared DML outside a transaction must take the same optimistic
    // auto-commit path as Session::execute — concurrent same-table writes
    // are absorbed by retry, never surfaced as spurious lock errors.
    let engine = engine_with_accounts();
    let threads = 4;
    let per_thread = 25;
    let mut handles = Vec::new();
    for t in 0..threads {
        let engine = engine.clone();
        handles.push(thread::spawn(move || {
            let s = engine.session();
            let stmt = s.prepare("INSERT INTO savings VALUES (?, ?)").unwrap();
            for i in 0..per_thread {
                stmt.execute(&[Value::Int(200 + t), Value::Int(i)]).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let s = engine.session();
    assert_eq!(
        s.query("SELECT * FROM savings").unwrap().len(),
        2 + (threads * per_thread) as usize
    );
}

/// Build an isolation [`History`] from a concrete engine run and certify
/// the produced histories free of the G0/G1 phenomena — the
/// snapshot-isolation shape the paper's consistency model assumes.
#[test]
fn dsg_checker_certifies_histories_free_of_g0_g1() {
    let engine = engine_with_accounts();
    let s = engine.session();
    let checking = engine.inspect(|st| st.catalog().resolve("checking").unwrap().id);
    let savings = engine.inspect(|st| st.catalog().resolve("savings").unwrap().id);

    let mut h = History::new();

    // T1: transfer between the two tables. Record what it actually read
    // (the pinned versions) and what it installed.
    let mut t1 = s.begin();
    let r1c = t1.snapshot().version_of(checking).unwrap().raw() as u32;
    let r1s = t1.snapshot().version_of(savings).unwrap().raw() as u32;
    t1.query("SELECT * FROM checking").unwrap();
    t1.query("SELECT * FROM savings").unwrap();
    h.read(1, "checking", r1c).read(1, "savings", r1s);
    t1.execute("UPDATE checking SET balance = balance - 10 WHERE owner = 1").unwrap();
    t1.execute("UPDATE savings SET balance = balance + 10 WHERE owner = 1").unwrap();

    // T2: a concurrent writer on the same table set, beginning at the same
    // frontier. First committer (T1) wins; T2 aborts without installing.
    let mut t2 = s.begin();
    let r2c = t2.snapshot().version_of(checking).unwrap().raw() as u32;
    t2.query("SELECT * FROM checking").unwrap();
    h.read(2, "checking", r2c);
    t2.execute("UPDATE checking SET balance = 0 WHERE owner = 2").unwrap();

    t1.commit().unwrap();
    let c_after = engine.inspect(|st| {
        st.table_store(checking).unwrap().latest_version().raw() as u32
    });
    let s_after = engine.inspect(|st| {
        st.table_store(savings).unwrap().latest_version().raw() as u32
    });
    h.write(1, "checking", c_after)
        .write(1, "savings", s_after)
        .commit(1);

    assert!(t2.commit().is_err(), "first committer wins");
    h.abort(2);

    // T3: a pure reader beginning after T1's commit reads T1's versions.
    let t3 = s.begin();
    let r3c = t3.snapshot().version_of(checking).unwrap().raw() as u32;
    assert_eq!(r3c, c_after, "reader sees the committed frontier");
    t3.query("SELECT * FROM checking").unwrap();
    h.read(3, "checking", r3c).commit(3);
    t3.commit().unwrap();

    let report = analyze(&h);
    assert!(report.free_of("G0"), "no write-cycle: {:?}", report.phenomena);
    assert!(report.free_of("G1a"), "no aborted reads: {:?}", report.phenomena);
    assert!(report.free_of("G1b"), "no intermediate reads: {:?}", report.phenomena);
    assert!(report.free_of("G1c"), "no dependency cycle: {:?}", report.phenomena);
}

#[test]
fn group_commit_installs_disjoint_committers_under_fewer_lock_acquisitions() {
    // The acceptance scenario for writer group-commit: N concurrent
    // committers on disjoint tables complete with FEWER engine-write-lock
    // acquisitions than commits. Deterministic staging: every committer
    // finishes admission + row work first; the first to enter the queue
    // becomes leader and stalls (we hold its table's storage commit
    // guard, which the install phase must acquire), so the rest pile up
    // behind it and land in one batched second round.
    const N: usize = 4;
    let engine = Engine::new(DbConfig::default());
    let s = engine.session();
    for i in 0..N {
        s.execute(&format!("CREATE TABLE g{i} (k INT)")).unwrap();
    }

    let mut staged = Vec::new();
    for i in 0..N {
        let mut txn = s.begin();
        txn.execute(&format!("INSERT INTO g{i} VALUES ({i})")).unwrap();
        staged.push(txn.prepare_commit().unwrap());
    }
    let before = engine.commit_stats();

    // Stall the leader inside its install: hold g0's storage commit
    // guard, which `validate_and_install` must acquire.
    let (_, g0_store) = store_of(&engine, "g0");
    let gate = g0_store.commit_guard();

    let mut staged = staged.into_iter();
    let leader = {
        let first = staged.next().unwrap();
        thread::spawn(move || first.commit().unwrap())
    };
    // The leader has drained its one-entry batch and taken the engine
    // write lock once it bumps the acquisition counter; every later
    // submit is now a follower.
    wait_until(
        || engine.commit_stats().install_lock_acquisitions == before.install_lock_acquisitions + 1,
        "the first committer to lead its batch",
    );

    let followers: Vec<_> = staged
        .map(|p| thread::spawn(move || p.commit().unwrap()))
        .collect();
    wait_until(
        || engine.pending_commits() == N - 1,
        "all remaining committers to enqueue",
    );
    drop(gate);

    leader.join().unwrap();
    for f in followers {
        f.join().unwrap();
    }

    let after = engine.commit_stats();
    let commits = after.commits - before.commits;
    let acquisitions = after.install_lock_acquisitions - before.install_lock_acquisitions;
    assert_eq!(commits, N as u64, "every committer committed");
    assert_eq!(
        acquisitions, 2,
        "one stalled leader round + one batch for the other {} committers",
        N - 1
    );
    assert!(acquisitions < commits, "group commit must batch");
    assert!(after.max_batch >= (N - 1) as u64, "stats: {after:?}");

    // And the data all landed.
    for i in 0..N {
        assert_eq!(
            s.query_sorted(&format!("SELECT * FROM g{i}")).unwrap(),
            vec![row!(i as i64)]
        );
    }
}

#[test]
fn forced_install_failure_cannot_leave_half_applied_state() {
    // Regression for the half-applied-commit bug: a multi-table commit
    // whose install fails on the SECOND table must not leave the first
    // table's new version published. We force the failure with a writer
    // that drives savings' store directly — bypassing the engine lock and
    // the TxnManager admission locks entirely — after the transaction has
    // prepared. The hardened pipeline validates every table under held
    // storage commit guards before installing anything, so the commit
    // aborts as a clean conflict with no version installed anywhere.
    let engine = engine_with_accounts();
    let s = engine.session();
    let (_, checking_store) = store_of(&engine, "checking");
    let (_, savings_store) = store_of(&engine, "savings");
    let checking_versions = checking_store.version_count();

    let mut txn = s.begin();
    txn.execute("INSERT INTO checking VALUES (77, 77)").unwrap();
    txn.execute("INSERT INTO savings VALUES (77, 77)").unwrap();

    // The direct-store racer lands a savings version the engine never saw.
    let ts = engine.inspect(|st| st.txn_manager().hlc().tick());
    savings_store
        .commit_change(vec![row!(999i64, 999i64)], vec![], ts, TxnId(999_999))
        .unwrap();

    let err = txn.commit().unwrap_err();
    assert!(is_serialization_conflict(&err), "got {err:?}");

    // Nothing half-applied: checking gained no version and neither table
    // shows the transaction's rows.
    assert_eq!(
        checking_store.version_count(),
        checking_versions,
        "no version may be installed on any table of an aborted commit"
    );
    assert!(s.query_sorted("SELECT * FROM checking WHERE owner = 77").unwrap().is_empty());
    assert!(s.query_sorted("SELECT * FROM savings WHERE owner = 77").unwrap().is_empty());

    // A retry against fresh state (which now includes the racer's row)
    // succeeds atomically.
    let mut retry = s.begin();
    retry.execute("INSERT INTO checking VALUES (77, 77)").unwrap();
    retry.execute("INSERT INTO savings VALUES (77, 77)").unwrap();
    retry.commit().unwrap();
    assert_eq!(s.query("SELECT * FROM checking WHERE owner = 77").unwrap().len(), 1);
    assert_eq!(s.query("SELECT * FROM savings WHERE owner = 77").unwrap().len(), 1);
}

#[test]
fn install_failures_under_racing_direct_writers_stay_atomic() {
    // Stress variant: a racer hammers savings' store directly while
    // transactions commit {checking, savings} pairs. Whatever interleaving
    // occurs, a transaction's marker rows appear in BOTH tables (commit
    // returned Ok) or NEITHER (conflict abort) — never in one.
    let engine = engine_with_accounts();
    let (_, savings_store) = store_of(&engine, "savings");
    let stop = Arc::new(AtomicUsize::new(0));
    let racer = {
        let engine = engine.clone();
        let stop = Arc::clone(&stop);
        thread::spawn(move || {
            let mut i = 0i64;
            while stop.load(Ordering::SeqCst) == 0 {
                let ts = engine.inspect(|st| st.txn_manager().hlc().tick());
                match savings_store.commit_change(
                    vec![row!(500_000 + i, 0i64)],
                    vec![],
                    ts,
                    TxnId(900_000),
                ) {
                    Ok(_) => i += 1,
                    // An engine commit can land on savings between this
                    // racer's tick and its install, making `ts` regress
                    // behind the chain — the racer simply lost that race;
                    // re-tick and try again.
                    Err(DtError::Storage(_)) => {}
                    Err(e) => panic!("racer commit failed: {e}"),
                }
                thread::yield_now();
            }
        })
    };

    let s = engine.session();
    let mut committed = Vec::new();
    let mut aborted = Vec::new();
    for m in 0..30i64 {
        let mut txn = s.begin();
        txn.execute(&format!("INSERT INTO checking VALUES ({}, 1)", 1000 + m)).unwrap();
        txn.execute(&format!("INSERT INTO savings  VALUES ({}, 1)", 1000 + m)).unwrap();
        match txn.commit() {
            Ok(_) => committed.push(1000 + m),
            Err(e) => {
                assert!(is_serialization_conflict(&e), "got {e:?}");
                aborted.push(1000 + m);
            }
        }
    }
    stop.store(1, Ordering::SeqCst);
    racer.join().unwrap();

    for m in committed {
        assert_eq!(
            s.query(&format!("SELECT * FROM checking WHERE owner = {m}")).unwrap().len(),
            1,
            "committed marker {m} missing from checking"
        );
        assert_eq!(
            s.query(&format!("SELECT * FROM savings WHERE owner = {m}")).unwrap().len(),
            1,
            "committed marker {m} missing from savings"
        );
    }
    for m in aborted {
        assert!(
            s.query(&format!("SELECT * FROM checking WHERE owner = {m}")).unwrap().is_empty(),
            "aborted marker {m} leaked into checking"
        );
        assert!(
            s.query(&format!("SELECT * FROM savings WHERE owner = {m}")).unwrap().is_empty(),
            "aborted marker {m} leaked into savings"
        );
    }
}

#[test]
fn externally_aborted_transaction_cannot_install_at_commit() {
    // A transaction retired through the manager directly (bypassing the
    // handle) between prepare and install must fail validation BEFORE
    // publishing anything — never install its versions and then report a
    // lifecycle error.
    let engine = engine_with_accounts();
    let s = engine.session();
    let (_, checking_store) = store_of(&engine, "checking");
    let versions = checking_store.version_count();

    let mut txn = s.begin();
    txn.execute("INSERT INTO checking VALUES (55, 55)").unwrap();
    let pc = txn.prepare_commit().unwrap();
    let handle = dt_txn::Txn {
        id: pc.txn_id(),
        snapshot_ts: dt_common::Timestamp::EPOCH,
    };
    engine.inspect(|st| st.txn_manager().abort(&handle)).unwrap();

    let err = pc.commit().unwrap_err();
    assert!(matches!(err, DtError::Txn(_)), "got {err:?}");
    assert!(!is_serialization_conflict(&err), "not a retryable conflict");
    assert_eq!(
        checking_store.version_count(),
        versions,
        "an inactive transaction must not publish a version"
    );
    assert!(s.query("SELECT * FROM checking WHERE owner = 55").unwrap().is_empty());
}

#[test]
fn concurrent_drop_during_group_commit_conflicts_only_the_dropped_table() {
    // Two staged committers share one group-commit window; between
    // staging and install, one committer's table is DROPped. The batch
    // must commit the survivor and conflict-abort the victim — and the
    // victim's store must stay untouched for UNDROP.
    let engine = engine_with_accounts();
    let s = engine.session();

    let mut on_checking = s.begin();
    on_checking.execute("INSERT INTO checking VALUES (8, 8)").unwrap();
    let on_checking = on_checking.prepare_commit().unwrap();

    let mut on_savings = s.begin();
    on_savings.execute("INSERT INTO savings VALUES (8, 8)").unwrap();
    let on_savings = on_savings.prepare_commit().unwrap();

    // The DROP lands after admission but before install.
    s.execute("DROP TABLE savings").unwrap();

    let before = engine.commit_stats();
    let (_, checking_store) = store_of(&engine, "checking");
    let gate = checking_store.commit_guard();
    let leader = thread::spawn(move || on_checking.commit());
    wait_until(
        || engine.commit_stats().install_lock_acquisitions == before.install_lock_acquisitions + 1,
        "the checking committer to lead",
    );
    let follower = thread::spawn(move || on_savings.commit());
    wait_until(|| engine.pending_commits() == 1, "the savings committer to enqueue");
    drop(gate);

    leader.join().unwrap().expect("surviving table commits");
    let err = follower.join().unwrap().unwrap_err();
    assert!(is_serialization_conflict(&err), "got {err:?}");

    assert_eq!(s.query("SELECT * FROM checking WHERE owner = 8").unwrap().len(), 1);
    s.execute("UNDROP TABLE savings").unwrap();
    assert_eq!(
        s.query_sorted("SELECT * FROM savings").unwrap(),
        vec![row!(1i64, 50i64), row!(2i64, 50i64)],
        "the dropped table's store must not contain the aborted write"
    );
}

/// Group-committed histories stay within the paper's isolation model:
/// concurrent committers over overlapping table sets, batched by the
/// queue, produce histories free of G0/G1 — and no reader ever observes a
/// half-applied multi-table commit.
#[test]
fn dsg_checker_certifies_group_committed_histories() {
    let engine = Engine::new(DbConfig::default());
    let s = engine.session();
    for i in 0..4 {
        s.execute(&format!("CREATE TABLE h{i} (k INT, v INT)")).unwrap();
        s.execute(&format!("INSERT INTO h{i} VALUES (0, 0)")).unwrap();
    }
    let stores: Vec<(EntityId, Arc<TableStore>)> =
        (0..4).map(|i| store_of(&engine, &format!("h{i}"))).collect();

    let seed = engine.commit_stats();
    let history = Arc::new(Mutex::new(History::new()));
    let label = Arc::new(AtomicUsize::new(1));
    let mut handles = Vec::new();
    for w in 0..4usize {
        let engine = engine.clone();
        let history = Arc::clone(&history);
        let label = Arc::clone(&label);
        let stores = stores.clone();
        handles.push(thread::spawn(move || {
            let s = engine.session();
            // Each writer hits an overlapping pair of tables. Kept to a
            // dozen transactions in total: the DSG checker *enumerates*
            // simple cycles, which is exponential in dense histories.
            let (a, b) = (w % 4, (w + 1) % 4);
            for i in 0..3 {
                let me = label.fetch_add(1, Ordering::SeqCst) as u32;
                let mut txn = s.begin();
                let ra = txn.snapshot().version_of(stores[a].0).unwrap().raw() as u32;
                let rb = txn.snapshot().version_of(stores[b].0).unwrap().raw() as u32;
                txn.query(&format!("SELECT * FROM h{a}")).unwrap();
                txn.query(&format!("SELECT * FROM h{b}")).unwrap();
                history.lock().unwrap().read(me, &format!("h{a}"), ra).read(
                    me,
                    &format!("h{b}"),
                    rb,
                );
                txn.execute(&format!("INSERT INTO h{a} VALUES ({w}, {i})")).unwrap();
                txn.execute(&format!("INSERT INTO h{b} VALUES ({w}, {i})")).unwrap();
                match txn.commit() {
                    Ok(commit_ts) => {
                        // The versions installed at our commit timestamp
                        // are exactly ours (timestamps are unique).
                        let va = stores[a].1.version_at(commit_ts).unwrap().raw() as u32;
                        let vb = stores[b].1.version_at(commit_ts).unwrap().raw() as u32;
                        let mut h = history.lock().unwrap();
                        h.write(me, &format!("h{a}"), va)
                            .write(me, &format!("h{b}"), vb)
                            .commit(me);
                        // No half-application: both tables carry a version
                        // stamped at exactly this commit timestamp.
                        assert_eq!(stores[a].1.commit_ts_of(dt_common::VersionId(va as u64)).unwrap(), commit_ts);
                        assert_eq!(stores[b].1.commit_ts_of(dt_common::VersionId(vb as u64)).unwrap(), commit_ts);
                    }
                    Err(e) => {
                        assert!(is_serialization_conflict(&e), "got {e:?}");
                        history.lock().unwrap().abort(me);
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let h = history.lock().unwrap();
    let report = analyze(&h);
    for phenomenon in ["G0", "G1a", "G1b", "G1c"] {
        assert!(
            report.free_of(phenomenon),
            "{phenomenon} in group-committed history: {:?}",
            report.phenomena
        );
    }
    assert!(h.committed().len() > 1, "some transactions must commit");
    let stats = engine.commit_stats();
    assert_eq!(
        stats.commits - seed.commits,
        h.committed().len() as u64,
        "history and telemetry agree"
    );
}
