//! Property tests for the commit-validation primitives that optimistic
//! transactions lean on: [`Frontier`] domination (refreshes and commit
//! validation only ever move frontiers forward) and [`Hlc`] monotonicity
//! (every commit timestamp is strictly ordered, even under adversarial
//! remote observations and a stalled physical clock).

use std::sync::Arc;

use dt_common::{Duration, EntityId, SimClock, Timestamp, VersionId};
use dt_txn::{Frontier, Hlc, HlcTimestamp};
use proptest::prelude::*;

fn frontier_from(ts: i64, sources: &[(u64, u64)]) -> Frontier {
    Frontier::from_sources(
        Timestamp::from_secs(ts),
        sources
            .iter()
            .map(|(e, v)| (EntityId(*e), VersionId(*v))),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn from_sources_round_trips_every_pair(
        ts in 0..1_000i64,
        sources in prop::collection::vec((0..12u64, 0..50u64), 0..10),
    ) {
        let f = frontier_from(ts, &sources);
        prop_assert_eq!(f.refresh_ts, Timestamp::from_secs(ts));
        // Later duplicates win (collected in order), and every tracked
        // source resolves to what was recorded for it.
        for (e, v) in &sources {
            let last = sources
                .iter()
                .rev()
                .find(|(e2, _)| e2 == e)
                .map(|(_, v2)| VersionId(*v2));
            prop_assert_eq!(f.get(EntityId(*e)), last);
            let _ = v;
        }
        // The iterator and the map agree on cardinality.
        let mut uniq: Vec<u64> = sources.iter().map(|(e, _)| *e).collect();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(f.len(), uniq.len());
        prop_assert_eq!(f.iter().count(), uniq.len());
    }

    #[test]
    fn dominates_is_reflexive_and_advancing_preserves_it(
        ts in 0..1_000i64,
        sources in prop::collection::vec((0..12u64, 0..50u64), 1..10),
        ts_delta in 0..100i64,
        version_deltas in prop::collection::vec(0..5u64, 10..11),
    ) {
        let old = frontier_from(ts, &sources);
        // Reflexivity: a frontier dominates itself.
        prop_assert!(old.dominates(&old));

        // Advance every source by a non-negative delta and the timestamp
        // by a non-negative delta: domination must hold (this is exactly
        // the "refreshes only move frontiers forward" invariant, and the
        // shape commit validation relies on).
        let mut new = Frontier::at(Timestamp::from_secs(ts + ts_delta));
        for (i, (e, _)) in old.iter().enumerate() {
            let v = old.get(e).unwrap();
            new.set(e, VersionId(v.raw() + version_deltas[i % version_deltas.len()]));
        }
        prop_assert!(new.dominates(&old));
        // Transitivity along the same chain: advance once more.
        let mut newer = Frontier::at(Timestamp::from_secs(ts + ts_delta + 1));
        for (e, v) in new.iter() {
            newer.set(e, VersionId(v.raw() + 1));
        }
        prop_assert!(newer.dominates(&new));
        prop_assert!(newer.dominates(&old));
        // Antisymmetry unless equal: strictly advancing any source breaks
        // the reverse direction.
        if newer != old {
            prop_assert!(!old.dominates(&newer));
        }
    }

    #[test]
    fn dominates_rejects_regression_and_missing_sources(
        ts in 0..1_000i64,
        sources in prop::collection::vec((0..12u64, 1..50u64), 1..10),
        victim in 0..10usize,
    ) {
        let old = frontier_from(ts, &sources);
        let victim_entity = {
            let pairs: Vec<_> = old.iter().collect();
            pairs[victim % pairs.len()].0
        };

        // Regressing one source breaks domination, no matter how far the
        // timestamp advanced.
        let mut regressed = Frontier::at(Timestamp::from_secs(ts + 1_000));
        for (e, v) in old.iter() {
            let v = if e == victim_entity {
                VersionId(v.raw().saturating_sub(1))
            } else {
                VersionId(v.raw() + 1)
            };
            regressed.set(e, v);
        }
        prop_assert!(!regressed.dominates(&old));

        // Dropping one source breaks domination too.
        let mut partial = Frontier::at(Timestamp::from_secs(ts + 1_000));
        for (e, v) in old.iter() {
            if e != victim_entity {
                partial.set(e, VersionId(v.raw() + 1));
            }
        }
        prop_assert!(!partial.dominates(&old));

        // An older timestamp breaks domination even with advanced sources.
        if ts > 0 {
            let mut stale = Frontier::at(Timestamp::from_secs(ts - 1));
            for (e, v) in old.iter() {
                stale.set(e, VersionId(v.raw() + 1));
            }
            prop_assert!(!stale.dominates(&old));
        }
    }
}

/// One step of an adversarial HLC workload.
#[derive(Debug, Clone)]
enum HlcOp {
    /// Local event (`tick` — the folded commit-timestamp form).
    Tick,
    /// Advance the physical clock by this many microseconds.
    Advance(i64),
    /// Observe a remote timestamp (physical µs, logical counter).
    Observe(i64, u32),
}

fn hlc_op() -> impl Strategy<Value = HlcOp> {
    prop_oneof![
        Just(HlcOp::Tick),
        (0..50i64).prop_map(HlcOp::Advance),
        (0..5_000i64, 0..40u32).prop_map(|(p, l)| HlcOp::Observe(p, l)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, .. ProptestConfig::default() })]

    #[test]
    fn hlc_stays_strictly_monotonic_under_observations(
        ops in prop::collection::vec(hlc_op(), 1..60),
    ) {
        let clock = SimClock::new();
        let hlc = Hlc::new(Arc::new(clock.clone()));
        let mut last_tick: Option<Timestamp> = None;
        let mut last_seen: Option<HlcTimestamp> = None;
        for op in &ops {
            match op {
                HlcOp::Tick => {
                    let t = hlc.tick();
                    if let Some(prev) = last_tick {
                        prop_assert!(t > prev, "tick regressed: {t} after {prev}");
                    }
                    last_tick = Some(t);
                }
                HlcOp::Advance(us) => {
                    clock.advance(Duration::from_micros(*us));
                }
                HlcOp::Observe(p, l) => {
                    let remote = HlcTimestamp { physical: *p, logical: *l };
                    hlc.observe(remote);
                    // Causality: the next local event follows the observed
                    // one *and* everything issued locally before it.
                    let now = hlc.now_hlc();
                    prop_assert!(now > remote);
                    if let Some(prev) = last_seen {
                        prop_assert!(now > prev);
                    }
                    last_seen = Some(now);
                }
            }
        }
        // A final tick beats everything that happened, in either form.
        let t = hlc.tick();
        if let Some(prev) = last_tick {
            prop_assert!(t > prev);
        }
        if let Some(prev) = last_seen {
            prop_assert!(t.as_micros() > prev.physical);
        }
    }
}
