//! Minimal API-compatible stand-in for the `criterion` crate (the build
//! environment has no crates-registry access; see `vendor/`).
//!
//! Implements the surface the workspace benches use — `criterion_group!`,
//! `criterion_main!`, `Criterion::benchmark_group`, `BenchmarkGroup::
//! {sample_size, warm_up_time, measurement_time, bench_function,
//! bench_with_input, finish}`, `Bencher::{iter, iter_with_setup}`, and
//! `BenchmarkId` — with a simple mean-over-samples measurement and a
//! plain-text report instead of criterion's statistical machinery. Good
//! enough to see the *shape* the benches exist to demonstrate (e.g. the
//! incremental-vs-full crossover), not for publication-grade numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    fn label(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

pub struct Bencher {
    samples: usize,
    /// Mean wall-clock time of the measured routine across samples.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed() / self.samples as u32;
    }

    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total / self.samples as u32;
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<R>(&mut self, id: impl Display, mut routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        println!("{}/{}: {:?} (mean of {})", self.name, id, b.elapsed, b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, R>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self
    where
        R: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
        };
        routine(&mut b, input);
        println!(
            "{}/{}: {:?} (mean of {})",
            self.name,
            id.label(),
            b.elapsed,
            b.samples
        );
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<R>(&mut self, id: impl Display, routine: R) -> &mut Self
    where
        R: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        self.benchmark_group(&name).bench_function("", routine);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
