//! Minimal API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The workspace builds in environments with no access to a
//! crates registry, so the handful of external dependencies are vendored as
//! small local crates (see `vendor/`). Only the surface the workspace uses
//! is provided: `Mutex`/`RwLock` whose lock methods return guards directly
//! (no `Result`, no poisoning — a panic while holding a lock simply clears
//! the poison flag on the next acquisition).

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Condition variable with the `parking_lot` calling convention: `wait`
/// takes the guard by `&mut` instead of by value. Backed by
/// [`std::sync::Condvar`]; the guard is moved out and back in around the
/// underlying wait (see the safety note in [`Condvar::wait`]).
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the mutex while waiting. As in
    /// `parking_lot`, spurious wakeups are possible — callers re-check
    /// their condition in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // SAFETY: the std condvar consumes and returns the guard; we move
        // it out of `*guard` and write the returned guard back, so the
        // caller's guard is always valid when this function returns. The
        // only way `sync::Condvar::wait` panics is the cross-mutex misuse
        // error; in that case the moved-out guard cannot be restored, so
        // we abort rather than let a dangling guard unwind.
        unsafe {
            let moved = std::ptr::read(guard);
            let rewaited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.0.wait(moved).unwrap_or_else(|e| e.into_inner())
            }));
            match rewaited {
                Ok(g) => std::ptr::write(guard, g),
                Err(_) => std::process::abort(),
            }
        }
    }

    /// Block until notified or until `timeout` elapses, releasing the mutex
    /// while waiting. Mirrors `parking_lot::Condvar::wait_for`: the guard is
    /// taken by `&mut` and the result only reports whether the wait timed
    /// out. Spurious wakeups are possible either way — callers re-check
    /// their condition (and recompute the remaining timeout) in a loop.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        // SAFETY: identical guard move-out/move-in dance as `wait`; see the
        // safety note there. `wait_timeout` returns the guard alongside the
        // timeout flag, so the caller's guard is restored on every path
        // short of the unrestorable cross-mutex panic, which aborts.
        unsafe {
            let moved = std::ptr::read(guard);
            let rewaited = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.0
                    .wait_timeout(moved, timeout)
                    .unwrap_or_else(|e| e.into_inner())
            }));
            match rewaited {
                Ok((g, res)) => {
                    std::ptr::write(guard, g);
                    WaitTimeoutResult(res.timed_out())
                }
                Err(_) => std::process::abort(),
            }
        }
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Result of a timed wait: reports whether the wait returned because the
/// timeout elapsed (as opposed to a notification or spurious wakeup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        use std::time::{Duration, Instant};
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(20));
        // The guard must still be usable after the timed-out wait.
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_for_wakes_on_notify() {
        use std::sync::Arc;
        use std::time::Duration;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            std::thread::sleep(Duration::from_millis(10));
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        let mut timed_out = false;
        while !*ready && !timed_out {
            timed_out = cv.wait_for(&mut ready, Duration::from_secs(5)).timed_out();
        }
        h.join().unwrap();
        assert!(*ready);
        assert!(!timed_out);
    }

    #[test]
    fn condvar_wait_and_notify() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            drop(ready);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        h.join().unwrap();
        assert!(*ready);
    }
}
