//! Minimal API-compatible stand-in for the `parking_lot` crate, backed by
//! `std::sync`. The workspace builds in environments with no access to a
//! crates registry, so the handful of external dependencies are vendored as
//! small local crates (see `vendor/`). Only the surface the workspace uses
//! is provided: `Mutex`/`RwLock` whose lock methods return guards directly
//! (no `Result`, no poisoning — a panic while holding a lock simply clears
//! the poison flag on the next acquisition).

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
