//! Minimal API-compatible stand-in for the `proptest` crate.
//!
//! The build environment has no crates-registry access (see `vendor/`), so
//! this local crate implements the subset of proptest the workspace's
//! property tests use: the `proptest!` macro with `#![proptest_config]`,
//! `Strategy` + `prop_map`, integer-range / tuple / `Just` / collection /
//! sample / regex-string strategies, `prop_oneof!`, and the `prop_assert*`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and the seed
//!   (derived from the test name, so runs are deterministic) instead of a
//!   minimized input.
//! * **Regex strategies** support the subset used here: literal chars,
//!   `[a-z]`-style classes, `\PC`/`\d`/`\w` escapes, and `{m,n}`/`{n}`/
//!   `*`/`+`/`?` quantifiers.
//! * Generation is driven by the workspace-local `rand` stand-in.

pub mod strategy;
pub mod test_runner;

/// `prop::collection` equivalent.
pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A strategy producing `Vec`s of `element` with length drawn from
    /// `size` (half-open, like proptest's `Range<usize>` conversion).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, size)
    }
}

/// `prop::sample` equivalent.
pub mod sample {
    use crate::strategy::Select;

    /// A strategy that picks one of `items` uniformly.
    pub fn select<T: Clone + std::fmt::Debug>(items: Vec<T>) -> Select<T> {
        Select::new(items)
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors proptest's `prelude::prop` re-export module.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// The main harness macro. Supports an optional leading
/// `#![proptest_config(expr)]` followed by any number of
/// `#[test] fn name(binding in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __seed = $crate::test_runner::seed_from_name(stringify!($name));
            let mut __rng = $crate::test_runner::TestRng::from_seed(__seed);
            let __strats = ($($strat,)+);
            for __case in 0..__config.cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                // The closure-wrapped body gives `?` a `Result` context,
                // like real proptest's generated runner.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __outcome {
                    ::std::panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}",
                        __case + 1, __config.cases, __seed, e
                    );
                }
            }
        }
    )*};
}

/// Unweighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = ::std::vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::OneOf::new(__arms)
    }};
}

// The `prop_assert*` macros map to the std assertions: with no shrinking,
// an immediate panic carries exactly as much information.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::std::assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::std::assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::std::assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = i64> {
        (0..100i64).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_maps(v in evens(), w in 5..10usize) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!((5..10).contains(&w));
        }

        #[test]
        fn tuples_vecs_oneof_select(
            pair in (0..6i64, 0..100i64),
            items in prop::collection::vec(prop_oneof![Just(1u32), Just(2u32)], 1..6),
            word in prop::sample::select(vec!["a", "b", "c"]),
        ) {
            prop_assert!(pair.0 < 6 && pair.1 < 100);
            prop_assert!(!items.is_empty() && items.len() < 6);
            prop_assert!(items.iter().all(|i| *i == 1 || *i == 2));
            prop_assert!(["a", "b", "c"].contains(&word));
        }

        #[test]
        fn regex_strategies(s in "[a-z]{1,8}", soup in "\\PC{0,20}") {
            prop_assert!((1..=8).contains(&s.chars().count()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            prop_assert!(soup.chars().count() <= 20);
            prop_assert!(soup.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        let strat = (0..1000i64, "[a-z]{1,8}");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
