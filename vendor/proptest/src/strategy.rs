//! Value-generation strategies for the proptest stand-in.
//!
//! `Strategy` is object-safe (generation only); the combinators that need
//! `Self: Sized` (`prop_map`, `boxed`) are provided methods so
//! `Box<dyn Strategy<Value = V>>` works for `prop_oneof!`.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

pub trait Strategy {
    type Value;

    /// Generate one value. (Real proptest grows a value tree for shrinking;
    /// this stand-in generates directly.)
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(S0 0);
impl_tuple_strategy!(S0 0, S1 1);
impl_tuple_strategy!(S0 0, S1 1, S2 2);
impl_tuple_strategy!(S0 0, S1 1, S2 2, S3 3);
impl_tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4);
impl_tuple_strategy!(S0 0, S1 1, S2 2, S3 3, S4 4, S5 5);

pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Backing type of `prop_oneof!`: uniform choice across boxed arms.
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Backing type of `prop::collection::vec`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> VecStrategy<S> {
    pub fn new(element: S, size: Range<usize>) -> Self {
        assert!(size.start < size.end, "empty size range for collection::vec");
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Backing type of `prop::sample::select`.
pub struct Select<T> {
    items: Vec<T>,
}

impl<T> Select<T> {
    pub fn new(items: Vec<T>) -> Self {
        assert!(!items.is_empty(), "sample::select requires a non-empty list");
        Select { items }
    }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.items.len());
        self.items[idx].clone()
    }
}

// ---------------------------------------------------------------------------
// Regex-subset string strategies: `"[a-z]{1,8}"`, `"\\PC{0,120}"`, ...
// ---------------------------------------------------------------------------

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

enum Atom {
    Literal(char),
    /// `\PC` — any non-control char. Mostly printable ASCII with a sprinkle
    /// of multibyte codepoints to stress UTF-8 handling.
    AnyPrintable,
    /// `[a-z0-9_]`-style class, expanded to its members.
    Class(Vec<char>),
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

const EXOTIC: &[char] = &['é', 'ß', 'Ω', '中', '∑', '🦀', '\u{00a0}'];

fn parse_pattern(pattern: &str) -> Vec<Quantified> {
    let mut chars = pattern.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '\\' => match chars.next() {
                // `\PC`, `\pL`, ...: a Unicode-category escape; consume the
                // category letter and approximate with "printable".
                Some('P') | Some('p') => {
                    chars.next();
                    Atom::AnyPrintable
                }
                Some('d') => Atom::Class(('0'..='9').collect()),
                Some('w') => {
                    let mut set: Vec<char> = ('a'..='z').collect();
                    set.extend('A'..='Z');
                    set.extend('0'..='9');
                    set.push('_');
                    Atom::Class(set)
                }
                Some(esc) => Atom::Literal(esc),
                None => panic!("dangling escape in pattern {pattern:?}"),
            },
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            set.extend(lo..=hi);
                        }
                        Some(ch) => {
                            if let Some(p) = prev.replace(ch) {
                                set.push(p);
                            }
                        }
                        None => panic!("unterminated class in pattern {pattern:?}"),
                    }
                }
                if let Some(p) = prev {
                    set.push(p);
                }
                Atom::Class(set)
            }
            '.' => Atom::AnyPrintable,
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for ch in chars.by_ref() {
                    if ch == '}' {
                        break;
                    }
                    spec.push(ch);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo = lo.trim().parse().expect("bad {m,n} quantifier");
                        let hi = if hi.trim().is_empty() {
                            lo + 16
                        } else {
                            hi.trim().parse().expect("bad {m,n} quantifier")
                        };
                        (lo, hi)
                    }
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, 16)
            }
            Some('+') => {
                chars.next();
                (1, 16)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        out.push(Quantified { atom, min, max });
    }
    out
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut s = String::new();
    for q in parse_pattern(pattern) {
        let n = rng.gen_range(q.min..q.max + 1);
        for _ in 0..n {
            match &q.atom {
                Atom::Literal(c) => s.push(*c),
                Atom::AnyPrintable => {
                    // ~1 in 16 chars is a non-ASCII codepoint.
                    if rng.gen_range(0..16usize) == 0 {
                        s.push(EXOTIC[rng.gen_range(0..EXOTIC.len())]);
                    } else {
                        s.push(char::from(rng.gen_range(0x20u8..0x7f)));
                    }
                }
                Atom::Class(set) => s.push(set[rng.gen_range(0..set.len())]),
            }
        }
    }
    s
}
