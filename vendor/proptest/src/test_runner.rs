//! Test-runner configuration, RNG, and error types for the proptest
//! stand-in.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Mirrors `proptest::test_runner::Config`. Only `cases` is honored; the
/// other fields exist so `Config { cases: N, ..Config::default() }` in the
/// test files compiles unchanged.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for source compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; rejection sampling is not used.
    pub max_local_rejects: u32,
    /// Accepted for source compatibility; rejection sampling is not used.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_shrink_iters: 0,
            max_local_rejects: 65_536,
            max_global_rejects: 1024,
        }
    }
}

/// The RNG driving generation — the workspace-local `StdRng`
/// (xoshiro256++), deterministic per seed.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// FNV-1a over the test name: every test gets a stable, distinct stream, so
/// failures reproduce run-over-run without a persistence file.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Failure of a single generated case. The `proptest!` body is wrapped in a
/// `Result<(), TestCaseError>` closure so `?` works on any `Error` type,
/// matching real proptest's `From<E: Error>` conversion.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        TestCaseError(e.to_string())
    }
}
