//! Minimal API-compatible stand-in for the `rand` crate (the build
//! environment has no crates-registry access; see `vendor/`). Implements
//! exactly the surface the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — deterministic,
//! fast, and statistically solid for workload synthesis, though not the
//! same stream as the real `StdRng` (ChaCha12). Benchmarks and property
//! tests in this workspace only rely on determinism, not on a specific
//! stream.

use std::ops::Range;

/// Object-safe core: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                // Widen to u128 so the span of full-width signed ranges fits.
                let span = (range.end as i128).wrapping_sub(range.start as i128) as u128;
                // Lemire-style rejection-free multiply-shift is overkill here;
                // modulo bias over a 64-bit source is negligible for the spans
                // the workspace samples (< 2^32).
                let v = (rng.next_u64() as u128) % span;
                ((range.start as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        range.start + (range.end - range.start) * f64_from_bits(rng.next_u64())
    }
}

fn f64_from_bits(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by the "standard" distribution (`rng.gen()`).
pub trait Standard {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

impl Standard for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing sampling interface, blanket-implemented for every core.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64_from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state is the one invalid xoshiro seed; splitmix64
            // cannot produce four zeros from any input, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(60..300i64);
            assert!((60..300).contains(&v));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of range");
        }
    }
}
