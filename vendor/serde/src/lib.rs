//! Minimal stand-in for the `serde` crate. The workspace annotates types
//! with `#[derive(Serialize, Deserialize)]` as forward-looking metadata but
//! does not yet serialize anything, and the build environment has no access
//! to a crates registry — so this local crate supplies empty marker traits
//! and no-op derives (see `vendor/serde_derive`). Replace the `serde` entry
//! in `[workspace.dependencies]` with the real crate when a serialization
//! surface is introduced.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods; the no-op derive
/// intentionally does not implement it — nothing in the workspace bounds on
/// it yet).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}
