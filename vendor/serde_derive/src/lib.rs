//! No-op `Serialize`/`Deserialize` derives for the workspace-local serde
//! stand-in (`vendor/serde`). The workspace only uses serde derives as
//! forward-looking annotations — nothing serializes yet — so the derives
//! expand to nothing. When a real serialization surface lands, swap
//! `vendor/serde` for the real crates in `[workspace.dependencies]`.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
